package sql

import (
	"testing"

	"rcnvm/internal/engine"
)

// TestLogCommitNilPathAllocatesNothing pins the volatile-server
// contract: with no commit log installed (-data-dir unset), the
// durability hooks on the write path cost one nil check and zero
// allocations.
func TestLogCommitNilPathAllocatesNothing(t *testing.T) {
	db, err := engine.Open(engine.DualAddress)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Parse("UPDATE kv SET val = 1 WHERE k = 2")
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if wait := logCommit(db, st, "UPDATE kv SET val = 1 WHERE k = 2", nil); wait != nil {
			t.Fatal("nil commit log produced a wait func")
		}
		if err := awaitDurable(nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("volatile logCommit path allocates %.1f/op, want 0", allocs)
	}
}

func TestMutatesRecursesIntoExplainAnalyze(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"SELECT COUNT(*) FROM kv", false},
		{"EXPLAIN SELECT * FROM kv", false},
		{"EXPLAIN ANALYZE SELECT * FROM kv", false},
		{"INSERT INTO kv VALUES (1, 2)", true},
		{"EXPLAIN INSERT INTO kv VALUES (1, 2)", false}, // plan only, never executed
		{"EXPLAIN ANALYZE INSERT INTO kv VALUES (1, 2)", true},
		{"EXPLAIN ANALYZE DELETE FROM kv WHERE k = 1", true},
	}
	for _, tc := range cases {
		st, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got := mutates(st); got != tc.want {
			t.Fatalf("mutates(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

// TestInnerSrc: the WAL must log the mutation inside EXPLAIN ANALYZE,
// not the EXPLAIN itself, so replay re-executes without re-timing.
func TestInnerSrc(t *testing.T) {
	cases := []struct{ in, want string }{
		{"INSERT INTO kv VALUES (1)", "INSERT INTO kv VALUES (1)"},
		{"EXPLAIN ANALYZE INSERT INTO kv VALUES (1)", "INSERT INTO kv VALUES (1)"},
		{"explain analyze delete from kv", "delete from kv"},
		{"  EXPLAIN   ANALYZE  UPDATE kv SET a = 1", "UPDATE kv SET a = 1"},
		// EXPLAINANALYZE is an identifier, not two keywords.
		{"EXPLAINANALYZE INSERT", "EXPLAINANALYZE INSERT"},
	}
	for _, tc := range cases {
		if got := innerSrc(tc.in); got != tc.want {
			t.Fatalf("innerSrc(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
