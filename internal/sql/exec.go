package sql

import (
	"fmt"
	"sort"
	"strings"

	"rcnvm/internal/engine"
	"rcnvm/internal/imdb"
)

// Result is the outcome of executing one statement.
type Result struct {
	// Columns and Rows are set for SELECTs.
	Columns []string
	Rows    [][]uint64
	// Floats carries AVG results aligned with Columns (nil when the cell
	// is integral); Rows holds the truncated integer value in that case.
	Floats []float64
	// Affected is the row count for INSERT/UPDATE.
	Affected int
	// Message summarizes DDL outcomes.
	Message string
}

// DefaultCapacity is used when CREATE TABLE omits CAPACITY.
const DefaultCapacity = 64 * 1024

// Exec parses and executes one statement against the database.
func Exec(db *engine.DB, src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Run(db, st)
}

// Run executes a parsed statement.
func Run(db *engine.DB, st Statement) (*Result, error) {
	switch s := st.(type) {
	case *CreateTable:
		return runCreate(db, s)
	case *Insert:
		return runInsert(db, s)
	case *Select:
		return runSelect(db, s)
	case *Update:
		return runUpdate(db, s)
	case *Delete:
		return runDelete(db, s)
	case *Explain:
		return runExplain(db, s)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", st)
	}
}

// resolveColumn maps a case-insensitive column reference to the schema's
// field name.
func resolveColumn(t *engine.Table, name string) (string, error) {
	for _, f := range t.Schema().Fields {
		if strings.EqualFold(f.Name, name) {
			return f.Name, nil
		}
	}
	return "", fmt.Errorf("sql: table %q has no column %q", t.Schema().Name, name)
}

func lookup(db *engine.DB, name string) (*engine.Table, error) {
	t, ok := db.Table(name)
	if !ok {
		return nil, fmt.Errorf("sql: no such table %q", name)
	}
	return t, nil
}

func runCreate(db *engine.DB, s *CreateTable) (*Result, error) {
	schema := imdb.Schema{Name: s.Name}
	for _, c := range s.Columns {
		schema.Fields = append(schema.Fields, imdb.Field{Name: c.Name, Words: c.Words})
	}
	capacity := s.Capacity
	if capacity == 0 {
		capacity = DefaultCapacity
	}
	if _, err := db.CreateTable(s.Name, schema, capacity); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created table %s (%d columns, capacity %d)",
		s.Name, len(s.Columns), capacity)}, nil
}

func runInsert(db *engine.DB, s *Insert) (*Result, error) {
	t, err := lookup(db, s.Table)
	if err != nil {
		return nil, err
	}
	for i, row := range s.Rows {
		if _, err := t.Append(row...); err != nil {
			return nil, fmt.Errorf("sql: row %d: %w", i+1, err)
		}
	}
	return &Result{Affected: len(s.Rows)}, nil
}

// evalConds runs the WHERE conjunction as successive filters: the first
// condition is a full column scan, the rest re-scan only prior matches.
func evalConds(t *engine.Table, conds []Cond) ([]int, error) {
	var rows []int
	for i, c := range conds {
		col, err := resolveColumn(t, c.Column)
		if err != nil {
			return nil, err
		}
		_, words, err := t.Schema().FieldOffset(col)
		if err != nil {
			return nil, err
		}
		if words != 1 {
			return nil, fmt.Errorf("sql: WHERE on wide field %q", col)
		}
		pred, err := predicate(c)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			if rows, err = t.ScanWhere(col, pred); err != nil {
				return nil, err
			}
			continue
		}
		var kept []int
		for _, row := range rows {
			vals, err := t.Field(row, col)
			if err != nil {
				return nil, err
			}
			if pred(vals) {
				kept = append(kept, row)
			}
		}
		rows = kept
	}
	// A WHERE that matches nothing must yield an empty (non-nil) row set:
	// the engine's aggregate methods treat a nil slice as "all live rows",
	// so propagating ScanWhere's nil here made SUM/MIN/MAX/GROUP BY over an
	// empty match aggregate the whole table.
	if rows == nil {
		rows = []int{}
	}
	return rows, nil
}

func predicate(c Cond) (func([]uint64) bool, error) {
	v := c.Value
	switch c.Op {
	case "=":
		return func(x []uint64) bool { return x[0] == v }, nil
	case "!=":
		return func(x []uint64) bool { return x[0] != v }, nil
	case "<":
		return func(x []uint64) bool { return x[0] < v }, nil
	case "<=":
		return func(x []uint64) bool { return x[0] <= v }, nil
	case ">":
		return func(x []uint64) bool { return x[0] > v }, nil
	case ">=":
		return func(x []uint64) bool { return x[0] >= v }, nil
	default:
		return nil, fmt.Errorf("sql: unknown operator %q", c.Op)
	}
}

func runSelect(db *engine.DB, s *Select) (*Result, error) {
	if s.JoinTable != "" {
		return runJoin(db, s)
	}
	t, err := lookup(db, s.Table)
	if err != nil {
		return nil, err
	}

	var rows []int
	if len(s.Where) > 0 {
		if rows, err = evalConds(t, s.Where); err != nil {
			return nil, err
		}
	} else {
		rows = t.LiveRows()
	}

	if s.OrderBy != "" && s.GroupBy == "" {
		col, err := resolveColumn(t, s.OrderBy)
		if err != nil {
			return nil, err
		}
		_, words, err := t.Schema().FieldOffset(col)
		if err != nil {
			return nil, err
		}
		if words != 1 {
			return nil, fmt.Errorf("sql: ORDER BY on wide field %q", col)
		}
		keys := make(map[int]uint64, len(rows))
		for _, row := range rows {
			vals, err := t.Field(row, col)
			if err != nil {
				return nil, err
			}
			keys[row] = vals[0]
		}
		sort.SliceStable(rows, func(i, j int) bool {
			if s.Desc {
				return keys[rows[i]] > keys[rows[j]]
			}
			return keys[rows[i]] < keys[rows[j]]
		})
	}

	if s.GroupBy != "" {
		out, err := runGroupBy(t, s, rows)
		if err != nil {
			return nil, err
		}
		return applyOrderLimit(out, s)
	}

	// Aggregates?
	hasAgg := false
	for _, it := range s.Items {
		if it.Agg != AggNone {
			hasAgg = true
		}
	}
	if hasAgg {
		res := &Result{Rows: [][]uint64{nil}}
		res.Floats = make([]float64, 0, len(s.Items))
		for _, it := range s.Items {
			switch it.Agg {
			case AggSum:
				col, err := resolveColumn(t, it.Column)
				if err != nil {
					return nil, err
				}
				v, err := t.SumField(col, rows)
				if err != nil {
					return nil, err
				}
				res.Columns = append(res.Columns, "SUM("+col+")")
				res.Rows[0] = append(res.Rows[0], v)
				res.Floats = append(res.Floats, 0)
			case AggAvg:
				col, err := resolveColumn(t, it.Column)
				if err != nil {
					return nil, err
				}
				if len(rows) == 0 {
					res.Columns = append(res.Columns, "AVG("+col+")")
					res.Rows[0] = append(res.Rows[0], 0)
					res.Floats = append(res.Floats, 0)
					continue
				}
				v, err := t.AvgField(col, rows)
				if err != nil {
					return nil, err
				}
				res.Columns = append(res.Columns, "AVG("+col+")")
				res.Rows[0] = append(res.Rows[0], uint64(v))
				res.Floats = append(res.Floats, v)
			case AggCount:
				res.Columns = append(res.Columns, "COUNT(*)")
				res.Rows[0] = append(res.Rows[0], uint64(len(rows)))
				res.Floats = append(res.Floats, 0)
			case AggMin, AggMax:
				col, err := resolveColumn(t, it.Column)
				if err != nil {
					return nil, err
				}
				lo, hi, err := t.MinMaxField(col, rows)
				if err != nil {
					return nil, err
				}
				if it.Agg == AggMin {
					res.Columns = append(res.Columns, "MIN("+col+")")
					res.Rows[0] = append(res.Rows[0], lo)
				} else {
					res.Columns = append(res.Columns, "MAX("+col+")")
					res.Rows[0] = append(res.Rows[0], hi)
				}
				res.Floats = append(res.Floats, 0)
			default:
				return nil, fmt.Errorf("sql: cannot mix plain columns with aggregates")
			}
		}
		return res, nil
	}

	fields, err := selectFields(t, s)
	if err != nil {
		return nil, err
	}
	if s.Limit > 0 && s.Limit < len(rows) {
		rows = rows[:s.Limit]
	}
	out, err := t.Project(rows, fields)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: fields, Rows: out}, nil
}

// applyOrderLimit post-sorts a GROUP BY result (only by its key column)
// and applies LIMIT.
func applyOrderLimit(res *Result, s *Select) (*Result, error) {
	if s.OrderBy != "" {
		if !strings.EqualFold(s.OrderBy, s.GroupBy) {
			return nil, fmt.Errorf("sql: GROUP BY results can only be ordered by the group key")
		}
		if s.Desc {
			for i, j := 0, len(res.Rows)-1; i < j; i, j = i+1, j-1 {
				res.Rows[i], res.Rows[j] = res.Rows[j], res.Rows[i]
			}
		}
	}
	if s.Limit > 0 && s.Limit < len(res.Rows) {
		res.Rows = res.Rows[:s.Limit]
	}
	return res, nil
}

func selectFields(t *engine.Table, s *Select) ([]string, error) {
	if s.Star {
		var fields []string
		for _, f := range t.Schema().Fields {
			fields = append(fields, f.Name)
		}
		return fields, nil
	}
	fields := make([]string, 0, len(s.Items))
	for _, it := range s.Items {
		col, err := resolveColumn(t, it.Column)
		if err != nil {
			return nil, err
		}
		fields = append(fields, col)
	}
	return fields, nil
}

func runJoin(db *engine.DB, s *Select) (*Result, error) {
	a, err := lookup(db, s.Table)
	if err != nil {
		return nil, err
	}
	b, err := lookup(db, s.JoinTable)
	if err != nil {
		return nil, err
	}
	left, err := resolveColumn(a, s.JoinLeft)
	if err != nil {
		return nil, err
	}
	right, err := resolveColumn(b, s.JoinRight)
	if err != nil {
		return nil, err
	}
	pairs, err := engine.Join(a, left, b, right)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for _, q := range s.JoinItems {
		res.Columns = append(res.Columns, q.Table+"."+q.Column)
	}
	for _, pr := range pairs {
		var row []uint64
		for _, q := range s.JoinItems {
			var t *engine.Table
			var id int
			switch {
			case strings.EqualFold(q.Table, s.Table):
				t, id = a, pr[0]
			case strings.EqualFold(q.Table, s.JoinTable):
				t, id = b, pr[1]
			default:
				return nil, fmt.Errorf("sql: projection table %q not in FROM/JOIN", q.Table)
			}
			col, err := resolveColumn(t, q.Column)
			if err != nil {
				return nil, err
			}
			vals, err := t.Field(id, col)
			if err != nil {
				return nil, err
			}
			row = append(row, vals...)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// groupBySpec validates the SELECT key, AGG(x) ... GROUP BY key shape and
// resolves both columns. Shared by the single-database path and the
// scatter-gather merge so they reject exactly the same statements.
func groupBySpec(t *engine.Table, s *Select) (key, aggCol string, agg AggKind, err error) {
	key, err = resolveColumn(t, s.GroupBy)
	if err != nil {
		return "", "", AggNone, err
	}
	if len(s.Items) != 2 || s.Items[0].Agg != AggNone ||
		!strings.EqualFold(s.Items[0].Column, s.GroupBy) || s.Items[1].Agg == AggNone {
		return "", "", AggNone, fmt.Errorf("sql: GROUP BY supports SELECT <key>, <aggregate> FROM ... GROUP BY <key>")
	}
	it := s.Items[1]
	aggCol = key // COUNT(*) needs no column; reuse the key for grouping
	if it.Agg != AggCount {
		if aggCol, err = resolveColumn(t, it.Column); err != nil {
			return "", "", AggNone, err
		}
	}
	return key, aggCol, it.Agg, nil
}

// renderGroups materializes GroupSum output (already merged and ordered by
// key) as a Result.
func renderGroups(groups []engine.GroupRow, key, aggCol string, agg AggKind) (*Result, error) {
	res := &Result{}
	switch agg {
	case AggSum:
		res.Columns = []string{key, "SUM(" + aggCol + ")"}
		for _, g := range groups {
			res.Rows = append(res.Rows, []uint64{g.Key, g.Sum})
		}
	case AggCount:
		res.Columns = []string{key, "COUNT(*)"}
		for _, g := range groups {
			res.Rows = append(res.Rows, []uint64{g.Key, uint64(g.Count)})
		}
	case AggAvg:
		res.Columns = []string{key, "AVG(" + aggCol + ")"}
		for _, g := range groups {
			res.Rows = append(res.Rows, []uint64{g.Key, g.Sum / uint64(g.Count)})
		}
	default:
		return nil, fmt.Errorf("sql: GROUP BY supports SUM, AVG and COUNT")
	}
	return res, nil
}

// runGroupBy handles SELECT key, AGG(x) FROM t [WHERE] GROUP BY key with
// exactly one aggregate (SUM, AVG or COUNT).
func runGroupBy(t *engine.Table, s *Select, rows []int) (*Result, error) {
	key, aggCol, agg, err := groupBySpec(t, s)
	if err != nil {
		return nil, err
	}
	groups, err := t.GroupSum(key, aggCol, rows)
	if err != nil {
		return nil, err
	}
	return renderGroups(groups, key, aggCol, agg)
}

func runDelete(db *engine.DB, s *Delete) (*Result, error) {
	t, err := lookup(db, s.Table)
	if err != nil {
		return nil, err
	}
	var rows []int
	if len(s.Where) > 0 {
		if rows, err = evalConds(t, s.Where); err != nil {
			return nil, err
		}
	} else {
		rows = t.LiveRows()
	}
	if err := t.Delete(rows); err != nil {
		return nil, err
	}
	return &Result{Affected: len(rows)}, nil
}

func runUpdate(db *engine.DB, s *Update) (*Result, error) {
	t, err := lookup(db, s.Table)
	if err != nil {
		return nil, err
	}
	var rows []int
	if len(s.Where) > 0 {
		if rows, err = evalConds(t, s.Where); err != nil {
			return nil, err
		}
	} else {
		rows = t.LiveRows()
	}
	for _, set := range s.Sets {
		col, err := resolveColumn(t, set.Column)
		if err != nil {
			return nil, err
		}
		if err := t.Update(rows, col, set.Value); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(rows)}, nil
}

// Format renders a result as an aligned text table.
func (r *Result) Format() string {
	var b strings.Builder
	switch {
	case r.Message != "":
		fmt.Fprintln(&b, r.Message)
	case len(r.Columns) == 0:
		fmt.Fprintf(&b, "%d row(s) affected\n", r.Affected)
	default:
		widths := make([]int, len(r.Columns))
		cells := make([][]string, 0, len(r.Rows))
		for i, c := range r.Columns {
			widths[i] = len(c)
		}
		for ri, row := range r.Rows {
			line := make([]string, len(row))
			for i, v := range row {
				if r.Floats != nil && ri == 0 && i < len(r.Floats) && r.Floats[i] != 0 {
					line[i] = fmt.Sprintf("%.2f", r.Floats[i])
				} else {
					line[i] = fmt.Sprintf("%d", v)
				}
				if i < len(widths) && len(line[i]) > widths[i] {
					widths[i] = len(line[i])
				}
			}
			cells = append(cells, line)
		}
		for i, c := range r.Columns {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		for _, line := range cells {
			for i, cell := range line {
				if i > 0 {
					b.WriteString("  ")
				}
				w := 0
				if i < len(widths) {
					w = widths[i]
				}
				fmt.Fprintf(&b, "%*s", w, cell)
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "(%d row(s))\n", len(r.Rows))
	}
	return b.String()
}
