package sql

import (
	"fmt"
	"strings"

	"rcnvm/internal/config"
	"rcnvm/internal/engine"
	"rcnvm/internal/sim"
	"rcnvm/internal/trace"
)

// Explain describes how a statement will touch memory: which steps run and
// with which access orientation. With Analyze set, the statement is also
// executed, its access trace captured, and the trace replayed on the
// RC-NVM timing simulator both as issued and downgraded to row-only
// accesses.
type Explain struct {
	Analyze bool
	Stmt    Statement
}

func (*Explain) stmt() {}

// parseExplain is called by Parse when the input starts with EXPLAIN.
func (p *parser) explain() (Statement, error) {
	ex := &Explain{}
	if p.keyword("ANALYZE") {
		ex.Analyze = true
	}
	inner, err := p.statement()
	if err != nil {
		return nil, err
	}
	if _, nested := inner.(*Explain); nested {
		return nil, fmt.Errorf("sql: EXPLAIN cannot nest")
	}
	ex.Stmt = inner
	return ex, nil
}

// runExplain produces the plan text (and, for ANALYZE, executes and
// times).
func runExplain(db *engine.DB, ex *Explain) (*Result, error) {
	var b strings.Builder
	describe(db, ex.Stmt, &b)

	if !ex.Analyze {
		return &Result{Message: strings.TrimRight(b.String(), "\n")}, nil
	}

	db.StartTrace()
	_, err := Run(db, ex.Stmt)
	stream := db.StopTrace()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "actual: %d memory ops", stream.MemOps())
	if stream.MemOps() > 0 {
		dual, err := sim.RunOn(config.RCNVM(), []trace.Stream{stream})
		if err != nil {
			return nil, err
		}
		row, err := sim.RunOn(config.RCNVM(), []trace.Stream{engine.RowOnlyStream(stream)})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "; est. %.1f us with column accesses, %.1f us row-only (%.2fx)",
			float64(dual.TimePs)/1e6, float64(row.TimePs)/1e6,
			float64(row.TimePs)/float64(dual.TimePs))
	}
	return &Result{Message: b.String()}, nil
}

// describe renders the access plan of a statement.
func describe(db *engine.DB, st Statement, b *strings.Builder) {
	scanKind := "column scan (cload)"
	fetchKind := "row fetch (load)"
	storeKind := "column store (cstore)"
	if db.Mode() == engine.RowOnly {
		scanKind = "strided row scan (load)"
		storeKind = "row store (store)"
	}
	switch s := st.(type) {
	case *CreateTable:
		layout := "chunked column-oriented layout on subarrays"
		if db.Mode() == engine.RowOnly {
			layout = "linear row store"
		}
		fmt.Fprintf(b, "create %s: %s\n", s.Name, layout)
	case *Insert:
		fmt.Fprintf(b, "insert %d tuple(s) into %s: %s per tuple\n", len(s.Rows), s.Table, fetchKind)
	case *Delete:
		describeWhere(b, s.Where, scanKind)
		fmt.Fprintf(b, "tombstone matching rows of %s (no memory writes)\n", s.Table)
	case *Update:
		describeWhere(b, s.Where, scanKind)
		for _, set := range s.Sets {
			fmt.Fprintf(b, "update %s.%s: %s per matching row\n", s.Table, set.Column, storeKind)
		}
	case *Select:
		if s.JoinTable != "" {
			fmt.Fprintf(b, "hash join %s x %s on %s/%s: build and probe via %s\n",
				s.Table, s.JoinTable, s.JoinLeft, s.JoinRight, scanKind)
			fmt.Fprintf(b, "project join pairs: %s per output field\n", fetchKind)
			break
		}
		describeWhere(b, s.Where, scanKind)
		switch {
		case s.GroupBy != "":
			fmt.Fprintf(b, "group by %s: %s over key and aggregate columns\n", s.GroupBy, scanKind)
		case hasAggregates(s):
			for _, it := range s.Items {
				if it.Agg != AggNone && it.Agg != AggCount {
					fmt.Fprintf(b, "aggregate %s: %s\n", it.String(), scanKind)
				}
			}
		default:
			fmt.Fprintf(b, "project %s: %s per row\n", projectionList(s), fetchKind)
		}
		if s.OrderBy != "" {
			fmt.Fprintf(b, "order by %s: %s for sort keys, in-CPU sort\n", s.OrderBy, scanKind)
		}
	case *Explain:
		fmt.Fprintln(b, "explain")
	}
}

func describeWhere(b *strings.Builder, conds []Cond, scanKind string) {
	for i, c := range conds {
		if i == 0 {
			fmt.Fprintf(b, "filter %s %s %d: %s\n", c.Column, c.Op, c.Value, scanKind)
		} else {
			fmt.Fprintf(b, "filter %s %s %d: re-check prior matches\n", c.Column, c.Op, c.Value)
		}
	}
}

func hasAggregates(s *Select) bool {
	for _, it := range s.Items {
		if it.Agg != AggNone {
			return true
		}
	}
	return false
}

func projectionList(s *Select) string {
	if s.Star {
		return "*"
	}
	parts := make([]string, len(s.Items))
	for i, it := range s.Items {
		parts[i] = it.String()
	}
	return strings.Join(parts, ", ")
}
