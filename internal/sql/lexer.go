// Package sql is a small SQL front end over the functional engine: enough
// of the language to type the paper's Table 2 queries against real data —
// CREATE TABLE, INSERT, single-table SELECT with WHERE conjunctions and
// aggregates, UPDATE, and two-table equi-JOINs. Statements execute on
// engine.DB, so every query runs through the dual-addressable storage
// layer (and can be trace-recorded for the timing simulator).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPunct // ( ) , . * ; =
	tokOp    // = < > <= >= !=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex splits src into tokens.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case isIdentStart(rune(c)):
			l.ident()
		case c >= '0' && c <= '9':
			l.number()
		case c == '<' || c == '>' || c == '!':
			start := l.pos
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			} else if c == '!' {
				return nil, fmt.Errorf("sql: stray '!' at %d", start)
			}
			l.emit(tokOp, l.src[start:l.pos], start)
		case c == '=':
			l.emit(tokOp, "=", l.pos)
			l.pos++
		case strings.ContainsRune("(),.*;", rune(c)):
			l.emit(tokPunct, string(c), l.pos)
			l.pos++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
		}
	}
	l.emit(tokEOF, "", l.pos)
	return l.toks, nil
}

func (l *lexer) emit(k tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.emit(tokIdent, l.src[start:l.pos], start)
}

func (l *lexer) number() {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos], start)
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

// keyword reports whether tok is the given keyword (case-insensitive).
func (t token) keyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
