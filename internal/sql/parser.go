package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE name (col [WIDE n], ...) [CAPACITY n].
type CreateTable struct {
	Name     string
	Columns  []ColumnDef
	Capacity int // 0 = default
}

// ColumnDef is one column: Words > 1 for wide fields.
type ColumnDef struct {
	Name  string
	Words int
}

// Insert is INSERT INTO name VALUES (v, ...), (v, ...).
type Insert struct {
	Table string
	Rows  [][]uint64
}

// AggKind enumerates aggregate functions.
type AggKind uint8

const (
	// AggNone is a plain column reference.
	AggNone AggKind = iota
	// AggSum is SUM(col).
	AggSum
	// AggAvg is AVG(col).
	AggAvg
	// AggCount is COUNT(*).
	AggCount
	// AggMin is MIN(col).
	AggMin
	// AggMax is MAX(col).
	AggMax
)

// SelectItem is one projection item.
type SelectItem struct {
	Agg    AggKind
	Column string // empty for COUNT(*)
}

// Cond is one WHERE conjunct: column op value.
type Cond struct {
	Column string
	Op     string // = < > <= >= !=
	Value  uint64
}

// Select is SELECT items FROM table [WHERE cond AND ...], or
// SELECT a.x, b.y FROM a JOIN b ON a.k = b.k.
type Select struct {
	Items []SelectItem
	Star  bool
	Table string
	Where []Cond
	// GroupBy is the grouping column (empty for plain selects).
	GroupBy string
	// OrderBy is the ordering column (empty = storage order); Desc flips
	// the direction. Limit > 0 truncates the result.
	OrderBy string
	Desc    bool
	Limit   int

	// Join fields (set when JoinTable != "").
	JoinTable           string
	JoinLeft, JoinRight string   // key columns of Table and JoinTable
	JoinItems           []QualID // qualified projections a.x / b.y
}

// QualID is a table-qualified column.
type QualID struct {
	Table, Column string
}

// Delete is DELETE FROM table [WHERE ...].
type Delete struct {
	Table string
	Where []Cond
}

// Update is UPDATE table SET col = v, ... [WHERE ...].
type Update struct {
	Table string
	Sets  []struct {
		Column string
		Value  uint64
	}
	Where []Cond
}

func (*CreateTable) stmt() {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}

// Parse parses one statement (an optional trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return st, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k tokenKind, text string) bool {
	t := p.peek()
	if t.kind != k {
		return false
	}
	return text == "" || strings.EqualFold(t.text, text)
}

func (p *parser) accept(k tokenKind, text string) bool {
	if p.at(k, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, text string) (token, error) {
	if !p.at(k, text) {
		return token{}, p.errf("expected %q, found %q", text, p.peek().text)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *parser) keyword(kw string) bool { return p.accept(tokIdent, kw) }

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) number() (uint64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errf("expected number, found %q", t.text)
	}
	p.next()
	v, err := strconv.ParseUint(t.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sql: bad number %q", t.text)
	}
	return v, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.keyword("CREATE"):
		return p.createTable()
	case p.keyword("INSERT"):
		return p.insert()
	case p.keyword("SELECT"):
		return p.selectStmt()
	case p.keyword("UPDATE"):
		return p.update()
	case p.keyword("DELETE"):
		return p.deleteStmt()
	case p.keyword("EXPLAIN"):
		return p.explain()
	default:
		return nil, p.errf("expected CREATE, INSERT, SELECT, UPDATE, DELETE or EXPLAIN, found %q", p.peek().text)
	}
}

func (p *parser) createTable() (Statement, error) {
	if !p.keyword("TABLE") {
		return nil, p.errf("expected TABLE")
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	st := &CreateTable{Name: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		words := 1
		if p.keyword("WIDE") {
			n, err := p.number()
			if err != nil {
				return nil, err
			}
			if n == 0 || n > 64 {
				return nil, fmt.Errorf("sql: WIDE width %d out of range", n)
			}
			words = int(n)
		}
		st.Columns = append(st.Columns, ColumnDef{Name: col, Words: words})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	if p.keyword("CAPACITY") {
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		st.Capacity = int(n)
	}
	return st, nil
}

func (p *parser) insert() (Statement, error) {
	if !p.keyword("INTO") {
		return nil, p.errf("expected INTO")
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if !p.keyword("VALUES") {
		return nil, p.errf("expected VALUES")
	}
	st := &Insert{Table: name}
	for {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var row []uint64
		for {
			v, err := p.number()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) selectStmt() (Statement, error) {
	st := &Select{}
	// Projection list; qualified names are tolerated and resolved after
	// FROM (needed for JOIN).
	var quals []QualID
	if p.accept(tokPunct, "*") {
		st.Star = true
	} else {
		for {
			item, qual, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			if qual != nil {
				quals = append(quals, *qual)
			} else {
				st.Items = append(st.Items, item)
			}
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
	}
	if !p.keyword("FROM") {
		return nil, p.errf("expected FROM")
	}
	var err error
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}

	if p.keyword("JOIN") {
		if st.Star || len(st.Items) > 0 {
			return nil, fmt.Errorf("sql: JOIN projections must be table-qualified (a.x, b.y)")
		}
		if st.JoinTable, err = p.ident(); err != nil {
			return nil, err
		}
		if !p.keyword("ON") {
			return nil, p.errf("expected ON")
		}
		l, err := p.qualIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		r, err := p.qualIdent()
		if err != nil {
			return nil, err
		}
		// Normalize sides to (Table, JoinTable).
		switch {
		case strings.EqualFold(l.Table, st.Table) && strings.EqualFold(r.Table, st.JoinTable):
			st.JoinLeft, st.JoinRight = l.Column, r.Column
		case strings.EqualFold(l.Table, st.JoinTable) && strings.EqualFold(r.Table, st.Table):
			st.JoinLeft, st.JoinRight = r.Column, l.Column
		default:
			return nil, fmt.Errorf("sql: ON clause must reference %s and %s", st.Table, st.JoinTable)
		}
		st.JoinItems = quals
		if len(quals) == 0 {
			return nil, fmt.Errorf("sql: JOIN needs qualified projections")
		}
		return st, nil
	}
	if len(quals) > 0 {
		return nil, fmt.Errorf("sql: qualified columns only valid with JOIN")
	}

	if p.keyword("WHERE") {
		if st.Where, err = p.conds(); err != nil {
			return nil, err
		}
	}
	if p.keyword("GROUP") {
		if !p.keyword("BY") {
			return nil, p.errf("expected BY after GROUP")
		}
		if st.GroupBy, err = p.ident(); err != nil {
			return nil, err
		}
	}
	if p.keyword("ORDER") {
		if !p.keyword("BY") {
			return nil, p.errf("expected BY after ORDER")
		}
		if st.OrderBy, err = p.ident(); err != nil {
			return nil, err
		}
		if p.keyword("DESC") {
			st.Desc = true
		} else {
			p.keyword("ASC")
		}
	}
	if p.keyword("LIMIT") {
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		st.Limit = int(n)
	}
	return st, nil
}

// selectItem parses one projection entry: col, t.col, SUM(col), AVG(col),
// COUNT(*).
func (p *parser) selectItem() (SelectItem, *QualID, error) {
	name, err := p.ident()
	if err != nil {
		return SelectItem{}, nil, err
	}
	switch {
	case strings.EqualFold(name, "SUM") && p.at(tokPunct, "("):
		col, err := p.parenIdent()
		return SelectItem{Agg: AggSum, Column: col}, nil, err
	case strings.EqualFold(name, "AVG") && p.at(tokPunct, "("):
		col, err := p.parenIdent()
		return SelectItem{Agg: AggAvg, Column: col}, nil, err
	case strings.EqualFold(name, "MIN") && p.at(tokPunct, "("):
		col, err := p.parenIdent()
		return SelectItem{Agg: AggMin, Column: col}, nil, err
	case strings.EqualFold(name, "MAX") && p.at(tokPunct, "("):
		col, err := p.parenIdent()
		return SelectItem{Agg: AggMax, Column: col}, nil, err
	case strings.EqualFold(name, "COUNT") && p.at(tokPunct, "("):
		p.next() // (
		if !p.accept(tokPunct, "*") {
			return SelectItem{}, nil, p.errf("COUNT supports only COUNT(*)")
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return SelectItem{}, nil, err
		}
		return SelectItem{Agg: AggCount}, nil, nil
	case p.accept(tokPunct, "."):
		col, err := p.ident()
		if err != nil {
			return SelectItem{}, nil, err
		}
		return SelectItem{}, &QualID{Table: name, Column: col}, nil
	default:
		return SelectItem{Column: name}, nil, nil
	}
}

func (p *parser) parenIdent() (string, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return "", err
	}
	col, err := p.ident()
	if err != nil {
		return "", err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return "", err
	}
	return col, nil
}

func (p *parser) qualIdent() (QualID, error) {
	tbl, err := p.ident()
	if err != nil {
		return QualID{}, err
	}
	if _, err := p.expect(tokPunct, "."); err != nil {
		return QualID{}, err
	}
	col, err := p.ident()
	if err != nil {
		return QualID{}, err
	}
	return QualID{Table: tbl, Column: col}, nil
}

func (p *parser) conds() ([]Cond, error) {
	var out []Cond
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		opTok := p.peek()
		if opTok.kind != tokOp {
			return nil, p.errf("expected comparison operator, found %q", opTok.text)
		}
		p.next()
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		out = append(out, Cond{Column: col, Op: opTok.text, Value: v})
		if p.keyword("AND") {
			continue
		}
		break
	}
	return out, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	if !p.keyword("FROM") {
		return nil, p.errf("expected FROM")
	}
	st := &Delete{}
	var err error
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if p.keyword("WHERE") {
		if st.Where, err = p.conds(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) update() (Statement, error) {
	st := &Update{}
	var err error
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if !p.keyword("SET") {
		return nil, p.errf("expected SET")
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, struct {
			Column string
			Value  uint64
		}{col, v})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if p.keyword("WHERE") {
		if st.Where, err = p.conds(); err != nil {
			return nil, err
		}
	}
	return st, nil
}
