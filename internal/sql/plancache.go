package sql

// Query-plan cache: repeated statement shapes skip the parser entirely.
//
// A statement's *shape* is its token stream with every number literal
// replaced by '?': "SELECT val FROM load WHERE id = 7" and "... id = 93"
// share one shape. The cache stores one parsed template per shape in a
// sharded LRU; a lookup re-lexes the incoming source into (shape key,
// literal vector) with zero allocations, and
//
//   - an exact literal match returns the shared template itself (the
//     statement structs are immutable during execution, so concurrent
//     executions can share one AST — the zero-allocation hit path the CI
//     benchmark gate pins), while
//   - a different literal vector clones the template and binds the new
//     literals into the clone in grammar order, skipping Parse and all of
//     its per-token work and allocations.
//
// Invalidation is generational: every successful DDL statement bumps a
// global generation counter and entries stamped with an older generation
// are treated as misses and replaced. (Today nothing a CREATE TABLE does
// can invalidate a parse-level template — name resolution happens at
// execution time — but the protocol is what later resolved-plan caching
// relies on, and the tests pin it.)
//
// Only INSERT/SELECT/UPDATE/DELETE templates are cached. DDL and EXPLAIN
// are rare, and CREATE TABLE is ambiguous under parameterization (WIDE 1
// and CAPACITY 0 parse identically to their absent forms, so a template
// cannot tell how many literals to rebind). For the same reason a
// cacheable statement is only inserted when its parsed form accounts for
// every lexed literal (e.g. "LIMIT 0" parses identically to no LIMIT and
// is therefore never cached — but it still *binds* correctly against a
// template cached from a "LIMIT n>0" source, because the shape key keeps
// the LIMIT token).

import (
	"sync"
	"sync/atomic"
)

// planShardCount is the number of independent LRU segments; lookups hash
// the shape key to a segment so concurrent sessions rarely contend on one
// mutex.
const planShardCount = 16

// DefaultPlanCacheSize is the total entry capacity NewPlanCache(0) uses.
const DefaultPlanCacheSize = 4096

// PlanCache is a sharded LRU of parsed statement templates keyed on
// statement shape. The zero value is not usable; a nil *PlanCache is and
// degrades every operation to the uncached path.
type PlanCache struct {
	gen       atomic.Uint64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	perShard int
	shards   [planShardCount]planShard
}

type planShard struct {
	mu      sync.Mutex
	entries map[string]*planEntry
	// Intrusive LRU list: head is most recently used.
	head, tail *planEntry
}

type planEntry struct {
	key        string
	tmpl       Statement
	lits       []uint64 // the template's own literal vector, in grammar order
	gen        uint64
	prev, next *planEntry
}

// NewPlanCache returns a cache holding up to capacity templates in total
// (0 = DefaultPlanCacheSize).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	per := (capacity + planShardCount - 1) / planShardCount
	if per < 1 {
		per = 1
	}
	pc := &PlanCache{perShard: per}
	for i := range pc.shards {
		pc.shards[i].entries = make(map[string]*planEntry)
	}
	return pc
}

// Invalidate bumps the DDL generation: every cached template becomes a
// miss and is replaced on next use. Called after successful DDL.
func (pc *PlanCache) Invalidate() {
	if pc == nil {
		return
	}
	pc.gen.Add(1)
}

// Counters returns the cumulative hit/miss/eviction counts.
func (pc *PlanCache) Counters() (hits, misses, evictions int64) {
	if pc == nil {
		return 0, 0, 0
	}
	return pc.hits.Load(), pc.misses.Load(), pc.evictions.Load()
}

// planScratch is the reusable per-lookup buffer; pooled so the hit path
// allocates nothing.
type planScratch struct {
	key  []byte
	lits []uint64
}

var planScratchPool = sync.Pool{New: func() any {
	return &planScratch{key: make([]byte, 0, 256), lits: make([]uint64, 0, 16)}
}}

// Parse returns the parsed statement for src, consulting the cache. The
// returned statement may be shared with concurrent executions of the same
// source text and must not be mutated (the executor never does). A nil
// receiver is the plain parser.
func (pc *PlanCache) Parse(src string) (Statement, error) {
	if pc == nil {
		return Parse(src)
	}
	sc := planScratchPool.Get().(*planScratch)
	defer planScratchPool.Put(sc)
	if !normalizeShape(src, sc) {
		// Sources the lexer would reject (or literals out of uint64 range)
		// fall through to Parse for its proper error.
		pc.misses.Add(1)
		return Parse(src)
	}
	gen := pc.gen.Load()
	sh := &pc.shards[shapeHash(sc.key)%planShardCount]

	sh.mu.Lock()
	if e, ok := sh.entries[string(sc.key)]; ok && e.gen == gen {
		sh.moveFront(e)
		if literalsEqual(e.lits, sc.lits) {
			sh.mu.Unlock()
			pc.hits.Add(1)
			return e.tmpl, nil
		}
		tmpl := e.tmpl
		sh.mu.Unlock()
		pc.hits.Add(1)
		return bindTemplate(tmpl, sc.lits), nil
	}
	sh.mu.Unlock()

	pc.misses.Add(1)
	st, err := Parse(src)
	if err != nil {
		// Errors are never cached: the message embeds source offsets and a
		// later same-shape source must get its own.
		return nil, err
	}
	if n := literalSlots(st); n >= 0 && n == len(sc.lits) {
		e := &planEntry{
			key:  string(sc.key),
			tmpl: st,
			lits: append([]uint64(nil), sc.lits...),
			gen:  gen,
		}
		sh.insert(pc, e)
	}
	return st, nil
}

// insert stores e, replacing any same-key entry (e.g. one from an older
// generation) and evicting the LRU tail past capacity.
func (sh *planShard) insert(pc *PlanCache, e *planEntry) {
	sh.mu.Lock()
	if old, ok := sh.entries[e.key]; ok {
		sh.unlink(old)
		delete(sh.entries, old.key)
	}
	sh.entries[e.key] = e
	sh.pushFront(e)
	for len(sh.entries) > pc.perShard {
		t := sh.tail
		sh.unlink(t)
		delete(sh.entries, t.key)
		pc.evictions.Add(1)
	}
	sh.mu.Unlock()
}

func (sh *planShard) pushFront(e *planEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *planShard) unlink(e *planEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *planShard) moveFront(e *planEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// normalizeShape lexes src into sc.key (the shape: every token verbatim,
// numbers replaced by '?', single-space separated) and sc.lits (the number
// values in textual order, which for every cacheable statement type equals
// the grammar's binding order). It mirrors lex() exactly; anything lex
// would reject reports !ok so the caller falls back to Parse.
func normalizeShape(src string, sc *planScratch) bool {
	sc.key = sc.key[:0]
	sc.lits = sc.lits[:0]
	pos := 0
	sep := func() {
		if len(sc.key) > 0 {
			sc.key = append(sc.key, ' ')
		}
	}
	for pos < len(src) {
		c := src[pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pos++
		case isIdentStart(rune(c)):
			start := pos
			for pos < len(src) && isIdentPart(rune(src[pos])) {
				pos++
			}
			sep()
			sc.key = append(sc.key, src[start:pos]...)
		case c >= '0' && c <= '9':
			var v uint64
			for pos < len(src) && src[pos] >= '0' && src[pos] <= '9' {
				d := uint64(src[pos] - '0')
				if v > (1<<64-1-d)/10 {
					return false // overflow: let Parse report "bad number"
				}
				v = v*10 + d
				pos++
			}
			sep()
			sc.key = append(sc.key, '?')
			sc.lits = append(sc.lits, v)
		case c == '<' || c == '>' || c == '!':
			start := pos
			pos++
			if pos < len(src) && src[pos] == '=' {
				pos++
			} else if c == '!' {
				return false // stray '!': lex error
			}
			sep()
			sc.key = append(sc.key, src[start:pos]...)
		case c == '=', c == '(', c == ')', c == ',', c == '.', c == '*', c == ';':
			sep()
			sc.key = append(sc.key, c)
			pos++
		default:
			return false // character lex rejects
		}
	}
	return len(sc.key) > 0
}

// shapeHash is FNV-1a over the shape key, selecting the LRU segment.
func shapeHash(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

func literalsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// literalSlots is the number of literal positions a template rebinding
// consumes, or -1 when the statement type is not cacheable. A parsed
// statement is only cached when this equals the lexed literal count, so
// binding can never mis-slot (rules out CREATE's WIDE 1 / CAPACITY 0 and
// SELECT's LIMIT 0, whose parses are ambiguous under parameterization).
func literalSlots(st Statement) int {
	switch s := st.(type) {
	case *Insert:
		n := 0
		for _, r := range s.Rows {
			n += len(r)
		}
		return n
	case *Select:
		if s.JoinTable != "" {
			return 0 // the join grammar has no literal positions
		}
		n := len(s.Where)
		if s.Limit > 0 {
			n++
		}
		return n
	case *Update:
		return len(s.Sets) + len(s.Where)
	case *Delete:
		return len(s.Where)
	default:
		return -1
	}
}

// bindTemplate deep-copies the literal-bearing parts of a cached template
// and writes lits into the copy in grammar order (which is textual order:
// INSERT row values; UPDATE SET values then WHERE; SELECT WHERE then
// LIMIT). Shared non-literal state (projection lists, names) stays shared
// — statements are immutable during execution.
func bindTemplate(st Statement, lits []uint64) Statement {
	switch s := st.(type) {
	case *Insert:
		rows := make([][]uint64, len(s.Rows))
		k := 0
		for i, r := range s.Rows {
			nr := make([]uint64, len(r))
			for j := range r {
				nr[j] = lits[k]
				k++
			}
			rows[i] = nr
		}
		return &Insert{Table: s.Table, Rows: rows}
	case *Select:
		ns := *s
		ns.Where = bindConds(s.Where, lits)
		if s.Limit > 0 {
			ns.Limit = int(lits[len(s.Where)])
		}
		return &ns
	case *Update:
		ns := *s
		ns.Sets = make([]struct {
			Column string
			Value  uint64
		}, len(s.Sets))
		copy(ns.Sets, s.Sets)
		for i := range ns.Sets {
			ns.Sets[i].Value = lits[i]
		}
		ns.Where = bindConds(s.Where, lits[len(s.Sets):])
		return &ns
	case *Delete:
		ns := *s
		ns.Where = bindConds(s.Where, lits)
		return &ns
	}
	// Unreachable: only the four types above are ever inserted.
	return st
}

func bindConds(conds []Cond, lits []uint64) []Cond {
	if len(conds) == 0 {
		return conds
	}
	out := make([]Cond, len(conds))
	copy(out, conds)
	for i := range out {
		out[i].Value = lits[i]
	}
	return out
}
