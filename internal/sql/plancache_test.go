package sql

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"rcnvm/internal/engine"
	"rcnvm/internal/shard"
)

// openKV returns a fresh single DB with a populated kv(k, grp, val) table.
func openKV(t testing.TB) *engine.DB {
	t.Helper()
	db, err := engine.Open(engine.DualAddress)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(db, "CREATE TABLE kv (k, grp, val) CAPACITY 1024"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := Exec(db, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d, %d)", i, i%4, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestPlanCacheShapeKey pins the normalization contract: statements that
// differ only in integer literals share one cache entry; statements that
// differ in structure, identifiers or operators do not.
func TestPlanCacheShapeKey(t *testing.T) {
	sameShape := [][2]string{
		{"SELECT val FROM kv WHERE k = 1", "SELECT val FROM kv WHERE k = 2"},
		{"SELECT val FROM kv WHERE k = 1 LIMIT 5", "SELECT val FROM kv WHERE k = 9 LIMIT 100"},
		{"INSERT INTO kv VALUES (1, 2, 3)", "INSERT INTO kv VALUES (7, 8, 9)"},
		{"UPDATE kv SET val = 5 WHERE k = 1", "UPDATE kv SET val = 50 WHERE k = 10"},
		{"DELETE FROM kv WHERE val > 100", "DELETE FROM kv WHERE val > 5"},
	}
	for _, pair := range sameShape {
		pc := NewPlanCache(0)
		if _, err := pc.Parse(pair[0]); err != nil {
			t.Fatalf("%s: %v", pair[0], err)
		}
		if _, err := pc.Parse(pair[1]); err != nil {
			t.Fatalf("%s: %v", pair[1], err)
		}
		hits, misses, _ := pc.Counters()
		if hits != 1 || misses != 1 {
			t.Errorf("%q vs %q: want 1 hit / 1 miss (shared shape), got %d/%d",
				pair[0], pair[1], hits, misses)
		}
	}
	differentShape := [][2]string{
		{"SELECT val FROM kv WHERE k = 1", "SELECT grp FROM kv WHERE k = 1"},
		{"SELECT val FROM kv WHERE k = 1", "SELECT val FROM kv WHERE k > 1"},
		{"SELECT val FROM kv WHERE k = 1", "SELECT val FROM kv WHERE grp = 1"},
		{"SELECT val FROM kv", "SELECT val FROM kv LIMIT 5"},
		{"INSERT INTO kv VALUES (1, 2, 3)", "INSERT INTO kv VALUES (1, 2, 3), (4, 5, 6)"},
	}
	for _, pair := range differentShape {
		pc := NewPlanCache(0)
		if _, err := pc.Parse(pair[0]); err != nil {
			t.Fatalf("%s: %v", pair[0], err)
		}
		if _, err := pc.Parse(pair[1]); err != nil {
			t.Fatalf("%s: %v", pair[1], err)
		}
		hits, _, _ := pc.Counters()
		if hits != 0 {
			t.Errorf("%q vs %q: distinct shapes must not share an entry (got %d hits)",
				pair[0], pair[1], hits)
		}
	}
}

// TestPlanCacheParseEquivalence: for a spread of statements, the cached
// parse (template hit, literal rebind) must produce an AST deeply equal to
// a fresh parse — including the parameterization edge cases (LIMIT 0 is
// grammar-absent, repeated literals, operators).
func TestPlanCacheParseEquivalence(t *testing.T) {
	srcs := []string{
		"SELECT val FROM kv WHERE k = 1",
		"SELECT val FROM kv WHERE k = 2",
		"SELECT * FROM kv WHERE grp = 3 AND val >= 10 LIMIT 7",
		"SELECT * FROM kv WHERE grp = 3 AND val >= 99 LIMIT 1",
		"SELECT * FROM kv LIMIT 0",
		"SELECT SUM(val), COUNT(*) FROM kv WHERE grp = 2",
		"INSERT INTO kv VALUES (100, 1, 2)",
		"INSERT INTO kv VALUES (101, 1, 1)",
		"UPDATE kv SET val = 7, grp = 7 WHERE k = 7",
		"UPDATE kv SET val = 8, grp = 0 WHERE k = 9",
		"DELETE FROM kv WHERE val < 5",
		"DELETE FROM kv WHERE val < 500",
	}
	pc := NewPlanCache(0)
	for round := 0; round < 2; round++ { // second round exercises hits
		for _, src := range srcs {
			want, err := Parse(src)
			if err != nil {
				t.Fatalf("Parse(%q): %v", src, err)
			}
			got, err := pc.Parse(src)
			if err != nil {
				t.Fatalf("cached Parse(%q): %v", src, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("round %d: cached Parse(%q) = %#v, want %#v", round, src, got, want)
			}
		}
	}
	if hits, _, _ := pc.Counters(); hits == 0 {
		t.Fatal("second round produced no cache hits")
	}
}

// TestPlanCacheCachedResultsIdentical runs the same mutation+query
// workload on two identical databases — one through the plan cache, one
// through plain parses — and requires deeply equal results statement by
// statement.
func TestPlanCacheCachedResultsIdentical(t *testing.T) {
	workload := []string{
		"INSERT INTO kv VALUES (200, 5, 1)",
		"INSERT INTO kv VALUES (201, 5, 2)",
		"SELECT val FROM kv WHERE k = 200",
		"SELECT val FROM kv WHERE k = 201",
		"UPDATE kv SET val = 99 WHERE k = 200",
		"SELECT SUM(val), COUNT(*) FROM kv WHERE grp = 5",
		"DELETE FROM kv WHERE k = 201",
		"SELECT COUNT(*) FROM kv WHERE grp = 5",
		"SELECT * FROM kv WHERE grp = 1 LIMIT 3",
		"SELECT * FROM kv WHERE grp = 1 LIMIT 0",
		"SELECT bogus FROM nowhere", // error slot: must fail identically
	}
	plain, cached := openKV(t), openKV(t)
	pc := NewPlanCache(0)
	for round := 0; round < 2; round++ {
		for _, src := range workload {
			wantRes, wantErr := Exec(plain, src)
			st, err := pc.Parse(src)
			var gotRes *Result
			var gotErr error
			if err != nil {
				gotErr = err
			} else {
				gotRes, gotErr = runLocked(cached, st, src)
			}
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("round %d %q: err %v vs cached %v", round, src, wantErr, gotErr)
			}
			if wantErr != nil && wantErr.Error() != gotErr.Error() {
				t.Fatalf("round %d %q: err %q vs cached %q", round, src, wantErr, gotErr)
			}
			if !reflect.DeepEqual(wantRes, gotRes) {
				t.Fatalf("round %d %q: result %+v vs cached %+v", round, src, wantRes, gotRes)
			}
		}
	}
}

// TestPlanCacheShardedScatter: the cached scatter path on a 4-shard
// cluster must return exactly what the uncached path returns, statement
// by statement, across repeated shapes.
func TestPlanCacheShardedScatter(t *testing.T) {
	open := func() *shard.Cluster {
		c, err := shard.Open(engine.DualAddress, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ExecSharded(c, "CREATE TABLE kv (k, grp, val) CAPACITY 1024"); err != nil {
			t.Fatal(err)
		}
		return c
	}
	plain, cached := open(), open()
	pc := NewPlanCache(0)
	workload := []string{}
	for i := 0; i < 32; i++ {
		workload = append(workload, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d, %d)", i, i%4, i*10))
	}
	workload = append(workload,
		"SELECT val FROM kv WHERE k = 3",
		"SELECT val FROM kv WHERE k = 17",
		"SELECT SUM(val), COUNT(*) FROM kv WHERE grp = 1",
		"UPDATE kv SET val = 1 WHERE grp = 2",
		"SELECT SUM(val), COUNT(*) FROM kv WHERE grp = 2",
		"DELETE FROM kv WHERE k = 3",
		"SELECT COUNT(*) FROM kv",
	)
	for round := 0; round < 2; round++ {
		for _, src := range workload {
			wantRes, wantErr := ExecSharded(plain, src)
			gotRes, gotErr := ExecShardedCached(cached, pc, src)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("round %d %q: err %v vs cached %v", round, src, wantErr, gotErr)
			}
			if !reflect.DeepEqual(wantRes, gotRes) {
				t.Fatalf("round %d %q: result %+v vs cached %+v", round, src, wantRes, gotRes)
			}
		}
	}
	if hits, _, _ := pc.Counters(); hits == 0 {
		t.Fatal("repeated sharded workload produced no cache hits")
	}
}

// TestPlanCacheDDLInvalidation: a successful CREATE TABLE bumps the
// generation, so every cached plan re-parses exactly once afterwards.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	c, err := shard.Open(engine.DualAddress, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPlanCache(0)
	if _, err := ExecShardedCached(c, pc, "CREATE TABLE a (x, y) CAPACITY 64"); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecShardedCached(c, pc, "INSERT INTO a VALUES (1, 2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecShardedCached(c, pc, "SELECT x FROM a WHERE y = 2"); err != nil {
		t.Fatal(err)
	}
	_, missesBefore, _ := pc.Counters()
	// Warm hit.
	if _, err := ExecShardedCached(c, pc, "SELECT x FROM a WHERE y = 2"); err != nil {
		t.Fatal(err)
	}
	hitsWarm, misses2, _ := pc.Counters()
	if misses2 != missesBefore || hitsWarm == 0 {
		t.Fatalf("warm repeat: want a hit and no new miss, got hits=%d misses %d->%d",
			hitsWarm, missesBefore, misses2)
	}
	// DDL invalidates: the same statement must MISS once, then hit again.
	// (The CREATE itself also counts one miss — DDL is never cached.)
	if _, err := ExecShardedCached(c, pc, "CREATE TABLE b (x, y) CAPACITY 64"); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecShardedCached(c, pc, "SELECT x FROM a WHERE y = 2"); err != nil {
		t.Fatal(err)
	}
	_, missesAfterDDL, _ := pc.Counters()
	if missesAfterDDL != misses2+2 {
		t.Fatalf("post-DDL repeat: want misses for the CREATE and the invalidated SELECT, got %d -> %d", misses2, missesAfterDDL)
	}
	if _, err := ExecShardedCached(c, pc, "SELECT x FROM a WHERE y = 2"); err != nil {
		t.Fatal(err)
	}
	hitsEnd, missesEnd, _ := pc.Counters()
	if missesEnd != missesAfterDDL || hitsEnd != hitsWarm+1 {
		t.Fatalf("re-cached after DDL: want a hit and no new miss, got hits %d->%d misses %d->%d",
			hitsWarm, hitsEnd, missesAfterDDL, missesEnd)
	}
	// A FAILED CREATE must not invalidate: the SELECT after it still hits.
	// (The CREATE's own parse is one more miss, like all DDL.)
	if _, err := ExecShardedCached(c, pc, "CREATE TABLE a (x, y) CAPACITY 64"); err == nil {
		t.Fatal("duplicate CREATE TABLE should fail")
	}
	if _, err := ExecShardedCached(c, pc, "SELECT x FROM a WHERE y = 2"); err != nil {
		t.Fatal(err)
	}
	hitsFinal, missesFinal, _ := pc.Counters()
	if missesFinal != missesEnd+1 || hitsFinal != hitsEnd+1 {
		t.Fatalf("failed DDL must not invalidate: hits %d->%d misses %d->%d",
			hitsEnd, hitsFinal, missesEnd, missesFinal)
	}
}

// TestPlanCacheEviction: a tiny cache under a rotating set of shapes
// evicts but never corrupts results.
func TestPlanCacheEviction(t *testing.T) {
	pc := NewPlanCache(16) // 1 entry per segment
	for i := 0; i < 200; i++ {
		// Vary the shape (column name) so entries compete for slots.
		src := fmt.Sprintf("SELECT c%d FROM kv WHERE c%d = %d", i%40, i%40, i)
		want, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pc.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("evicting cache corrupted parse of %q", src)
		}
	}
	if _, _, ev := pc.Counters(); ev == 0 {
		t.Fatal("200 shapes through a 16-entry cache produced no evictions")
	}
}

// TestPlanCacheConcurrent hammers one cache from many goroutines (run
// under -race) mixing hits, misses, rebinds and invalidations.
func TestPlanCacheConcurrent(t *testing.T) {
	pc := NewPlanCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				src := fmt.Sprintf("SELECT val FROM t%d WHERE k = %d", i%10, i)
				if _, err := pc.Parse(src); err != nil {
					t.Error(err)
					return
				}
				if i%97 == 0 {
					pc.Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPlanCacheNil: a nil cache is the uncached path.
func TestPlanCacheNil(t *testing.T) {
	var pc *PlanCache
	st, err := pc.Parse("SELECT val FROM kv WHERE k = 1")
	if err != nil || st == nil {
		t.Fatalf("nil cache Parse = %v, %v", st, err)
	}
	pc.Invalidate() // must not panic
	if h, m, e := pc.Counters(); h != 0 || m != 0 || e != 0 {
		t.Fatal("nil cache counters must read zero")
	}
}

// BenchmarkPlanCacheHit pins the hot path's allocation contract: a cache
// hit whose literals match the cached template returns the shared
// statement with ZERO allocations (CI's zero-alloc gate greps this).
func BenchmarkPlanCacheHit(b *testing.B) {
	pc := NewPlanCache(0)
	const src = "SELECT val FROM kv WHERE k = 42"
	if _, err := pc.Parse(src); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCacheRebind measures the hit-with-different-literals path
// (template clone + literal bind), the common OLTP case.
func BenchmarkPlanCacheRebind(b *testing.B) {
	pc := NewPlanCache(0)
	srcs := [2]string{
		"SELECT val FROM kv WHERE k = 42",
		"SELECT val FROM kv WHERE k = 43",
	}
	if _, err := pc.Parse(srcs[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.Parse(srcs[1]); err != nil {
			b.Fatal(err)
		}
	}
}
