package sql

import (
	"fmt"
	"strings"
)

// String renders the statement back as SQL. Parse(stmt.String()) yields an
// equivalent statement (the printer/parser round-trip property the tests
// enforce).

func (s *CreateTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", s.Name)
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		if c.Words > 1 {
			fmt.Fprintf(&b, " WIDE %d", c.Words)
		}
	}
	b.WriteString(")")
	if s.Capacity > 0 {
		fmt.Fprintf(&b, " CAPACITY %d", s.Capacity)
	}
	return b.String()
}

func (s *Insert) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s VALUES ", s.Table)
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, v := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteString(")")
	}
	return b.String()
}

func (it SelectItem) String() string {
	switch it.Agg {
	case AggSum:
		return "SUM(" + it.Column + ")"
	case AggAvg:
		return "AVG(" + it.Column + ")"
	case AggMin:
		return "MIN(" + it.Column + ")"
	case AggMax:
		return "MAX(" + it.Column + ")"
	case AggCount:
		return "COUNT(*)"
	default:
		return it.Column
	}
}

func condsString(conds []Cond) string {
	parts := make([]string, len(conds))
	for i, c := range conds {
		parts[i] = fmt.Sprintf("%s %s %d", c.Column, c.Op, c.Value)
	}
	return strings.Join(parts, " AND ")
}

func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case s.JoinTable != "":
		for i, q := range s.JoinItems {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s.%s", q.Table, q.Column)
		}
		fmt.Fprintf(&b, " FROM %s JOIN %s ON %s.%s = %s.%s",
			s.Table, s.JoinTable, s.Table, s.JoinLeft, s.JoinTable, s.JoinRight)
		return b.String()
	case s.Star:
		b.WriteString("*")
	default:
		for i, it := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.String())
		}
	}
	fmt.Fprintf(&b, " FROM %s", s.Table)
	if len(s.Where) > 0 {
		fmt.Fprintf(&b, " WHERE %s", condsString(s.Where))
	}
	if s.GroupBy != "" {
		fmt.Fprintf(&b, " GROUP BY %s", s.GroupBy)
	}
	if s.OrderBy != "" {
		fmt.Fprintf(&b, " ORDER BY %s", s.OrderBy)
		if s.Desc {
			b.WriteString(" DESC")
		}
	}
	if s.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

func (s *Update) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "UPDATE %s SET ", s.Table)
	for i, set := range s.Sets {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = %d", set.Column, set.Value)
	}
	if len(s.Where) > 0 {
		fmt.Fprintf(&b, " WHERE %s", condsString(s.Where))
	}
	return b.String()
}

func (s *Delete) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DELETE FROM %s", s.Table)
	if len(s.Where) > 0 {
		fmt.Fprintf(&b, " WHERE %s", condsString(s.Where))
	}
	return b.String()
}

func (s *Explain) String() string {
	if s.Analyze {
		return "EXPLAIN ANALYZE " + StatementText(s.Stmt)
	}
	return "EXPLAIN " + StatementText(s.Stmt)
}

// StatementText renders a parsed statement back as SQL (every statement
// type implements String with the parser round-trip property). The WAL
// uses it to log an EXPLAIN ANALYZE's inner mutation from the parsed AST
// instead of re-deriving it from the source text.
func StatementText(st Statement) string {
	return st.(interface{ String() string }).String()
}
