package sql

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"rcnvm/internal/engine"
)

// TestPrintParseRoundTrip: printing a parsed statement and re-parsing it
// yields an identical AST.
func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		"CREATE TABLE t (a, b WIDE 4, c) CAPACITY 128",
		"CREATE TABLE t (a)",
		"INSERT INTO t VALUES (1, 2, 3), (4, 5, 6)",
		"SELECT * FROM t",
		"SELECT a, b FROM t WHERE a > 5 AND b <= 9",
		"SELECT SUM(a), COUNT(*), MIN(b), MAX(b), AVG(c) FROM t WHERE a != 0",
		"SELECT a, SUM(b) FROM t GROUP BY a",
		"SELECT a FROM t ORDER BY b DESC LIMIT 10",
		"SELECT a FROM t WHERE a = 1 ORDER BY a LIMIT 3",
		"SELECT x.a, y.b FROM x JOIN y ON x.k = y.k",
		"UPDATE t SET a = 1, b = 2 WHERE c < 7",
		"DELETE FROM t WHERE a >= 3",
		"DELETE FROM t",
	}
	for _, src := range srcs {
		first, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		printed := fmt.Sprintf("%v", first)
		second, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", printed, src, err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("round trip changed AST:\n  src:     %q\n  printed: %q\n  a: %#v\n  b: %#v",
				src, printed, first, second)
		}
	}
}

func TestSelectItemString(t *testing.T) {
	if (SelectItem{Agg: AggCount}).String() != "COUNT(*)" {
		t.Error("count printer")
	}
	if (SelectItem{Column: "x"}).String() != "x" {
		t.Error("plain printer")
	}
}

func TestExplain(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res := mustExec(t, db, "EXPLAIN SELECT SUM(salary) FROM person WHERE age > 40")
	for _, want := range []string{"filter age > 40", "column scan (cload)", "aggregate SUM(salary)"} {
		if !contains(res.Message, want) {
			t.Errorf("plan missing %q: %q", want, res.Message)
		}
	}
	// EXPLAIN does not execute: counts unchanged by the plan-only form.
	before := db.Mem().Counts()
	mustExec(t, db, "EXPLAIN UPDATE person SET salary = 0")
	if db.Mem().Counts() != before {
		t.Error("plain EXPLAIN touched memory")
	}
}

func TestExplainAnalyze(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res := mustExec(t, db, "EXPLAIN ANALYZE SELECT SUM(salary) FROM person WHERE age > 40")
	for _, want := range []string{"actual:", "memory ops", "row-only"} {
		if !contains(res.Message, want) {
			t.Errorf("analyze missing %q: %q", want, res.Message)
		}
	}
	// ANALYZE really executed the statement.
	if db.Mem().Counts().ColReads == 0 {
		t.Error("ANALYZE did not execute")
	}
}

func TestExplainRowOnlyEngine(t *testing.T) {
	db, err := engine.Open(engine.RowOnly)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a, b) CAPACITY 8")
	res := mustExec(t, db, "EXPLAIN SELECT SUM(a) FROM t WHERE b > 1")
	if !contains(res.Message, "strided row scan") {
		t.Errorf("row-only plan wrong: %q", res.Message)
	}
}

func TestExplainErrors(t *testing.T) {
	db := newDB(t)
	if _, err := Exec(db, "EXPLAIN EXPLAIN SELECT 1 FROM x"); err == nil {
		t.Fatal("nested EXPLAIN accepted")
	}
	if _, err := Exec(db, "EXPLAIN"); err == nil {
		t.Fatal("bare EXPLAIN accepted")
	}
}

func contains(s, sub string) bool {
	return strings.Contains(s, sub)
}
