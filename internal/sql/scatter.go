package sql

// Scatter-gather execution over a shard.Cluster: one statement is split
// into per-shard sub-plans, fanned out over the cluster's worker budget,
// and the partial results merged back into a single Result that is
// byte-identical to what the 1-shard baseline produces.
//
// Routing: a statement whose WHERE pins the partitioning column with an
// equality runs on exactly one shard (all matching rows live there);
// everything else broadcasts. INSERT routes row by row but appends
// sequentially in statement order so global row ids — the merge order of
// every gathered result — follow insertion order exactly as baseline row
// ids do.
//
// Locking: the shards a statement touches are locked in ascending shard
// order (read locks for read-only statements, exclusive otherwise), held
// across sub-plan execution AND the merge (merging plain selects and
// joins projects rows, which reads shard memory). Ascending acquisition
// makes the multi-shard 2PL deadlock-free at statement granularity.
//
// Determinism: fanned-out sub-plans never abort each other — every shard
// runs to completion into its own slot and the merge consumes slots in
// shard order, so results and error values are independent of -workers
// and goroutine scheduling. When several shards fail (possible only with
// fault injection), the lowest shard index's error wins.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"rcnvm/internal/engine"
	"rcnvm/internal/obs"
	"rcnvm/internal/par"
	"rcnvm/internal/shard"
	"rcnvm/internal/trace"
)

// ExecSharded parses and executes one statement across the cluster,
// holding the per-shard statement locks the sub-plans require. A 1-shard
// cluster takes exactly the ExecLocked path.
func ExecSharded(c *shard.Cluster, src string) (*Result, error) {
	return ExecShardedCached(c, nil, src)
}

// ExecShardedCached is ExecSharded with a plan cache consulted for the
// parse (nil = plain Parse). Successful DDL bumps the cache generation so
// templates cached before the schema change are re-parsed.
func ExecShardedCached(c *shard.Cluster, pc *PlanCache, src string) (*Result, error) {
	st, err := pc.Parse(src)
	if err != nil {
		return nil, err
	}
	var res *Result
	if c.N() == 1 {
		res, err = runLocked(c.Shard(0), st, src)
	} else {
		res, _, err = runSharded(c, st, src, false, nil, 0)
	}
	invalidateOnDDL(pc, st, err)
	return res, err
}

// ExecShardedObserved is ExecSharded with wall-clock phase spans (parse,
// lock_wait, exec) recorded under obs.ProcQuery on lane tid.
func ExecShardedObserved(c *shard.Cluster, src string, rec *obs.Recorder, tid int64) (*Result, error) {
	return ExecShardedObservedCached(c, nil, src, rec, tid)
}

// ExecShardedObservedCached is ExecShardedObserved with a plan cache
// consulted for the parse (nil = plain Parse).
func ExecShardedObservedCached(c *shard.Cluster, pc *PlanCache, src string, rec *obs.Recorder, tid int64) (*Result, error) {
	if rec == nil {
		return ExecShardedCached(c, pc, src)
	}
	t0 := time.Now()
	st, err := pc.Parse(src)
	rec.WallSince(obs.ProcQuery, "parse", obs.CatSQL, tid, t0)
	if err != nil {
		return nil, err
	}
	var res *Result
	if c.N() == 1 {
		res, err = runObserved(c.Shard(0), st, src, rec, tid)
	} else {
		res, _, err = runSharded(c, st, src, false, rec, tid)
	}
	invalidateOnDDL(pc, st, err)
	return res, err
}

// invalidateOnDDL bumps the plan-cache generation after a successful
// schema change (CREATE TABLE, bare or under EXPLAIN ANALYZE).
func invalidateOnDDL(pc *PlanCache, st Statement, execErr error) {
	if pc == nil || execErr != nil {
		return
	}
	switch s := st.(type) {
	case *CreateTable:
		pc.Invalidate()
	case *Explain:
		if _, ok := s.Stmt.(*CreateTable); ok && s.Analyze {
			pc.Invalidate()
		}
	}
}

// ExecShardedTraced executes one statement with per-shard memory-access
// recording: streams[i] is shard i's recorded stream (nil for shards the
// statement never locked). Tracing forces exclusive locks, as in
// ExecTraced.
func ExecShardedTraced(c *shard.Cluster, src string) (*Result, []trace.Stream, error) {
	if c.N() == 1 {
		res, stream, err := ExecTraced(c.Shard(0), src)
		if err != nil {
			return nil, nil, err
		}
		return res, []trace.Stream{stream}, nil
	}
	st, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	if _, ok := st.(*Explain); ok {
		return nil, nil, fmt.Errorf("sql: EXPLAIN already reports timing; run it untraced")
	}
	return runSharded(c, st, src, true, nil, 0)
}

// ExecShardedTracedObserved is ExecShardedTraced with the ExecObserved
// phase spans.
func ExecShardedTracedObserved(c *shard.Cluster, src string, rec *obs.Recorder, tid int64) (*Result, []trace.Stream, error) {
	if rec == nil {
		return ExecShardedTraced(c, src)
	}
	if c.N() == 1 {
		res, stream, err := ExecTracedObserved(c.Shard(0), src, rec, tid)
		if err != nil {
			return nil, nil, err
		}
		return res, []trace.Stream{stream}, nil
	}
	t0 := time.Now()
	st, err := Parse(src)
	rec.WallSince(obs.ProcQuery, "parse", obs.CatSQL, tid, t0)
	if err != nil {
		return nil, nil, err
	}
	if _, ok := st.(*Explain); ok {
		return nil, nil, fmt.Errorf("sql: EXPLAIN already reports timing; run it untraced")
	}
	return runSharded(c, st, src, true, rec, tid)
}

// runSharded is the N>1 core: route, lock, (trace,) execute, log, merge,
// unlock, wait for durability.
func runSharded(c *shard.Cluster, st Statement, src string, traced bool, rec *obs.Recorder, tid int64) (*Result, []trace.Stream, error) {
	targets, exclusive := route(c, st, traced)
	tLock := time.Now()
	unlock := lockShards(c, targets, exclusive)
	unlocked := false
	defer func() {
		// Panic-safe: the normal path unlocks by hand before the
		// durability wait below.
		if !unlocked {
			unlock()
		}
	}()
	if rec != nil {
		rec.WallSince(obs.ProcQuery, "lock_wait", obs.CatSQL, tid, tLock)
	}
	var streams []trace.Stream
	if traced {
		streams = make([]trace.Stream, c.N())
		for _, i := range targets {
			c.Shard(i).StartTrace()
		}
	}
	tExec := time.Now()
	res, waits, err := dispatchSharded(c, st, src, targets)
	if traced {
		for _, i := range targets {
			streams[i] = c.Shard(i).StopTrace()
		}
	}
	if rec != nil {
		rec.WallSince(obs.ProcQuery, "exec", obs.CatSQL, tid, tExec)
	}
	// Release the statement locks before waiting for the WAL fsyncs:
	// group commit batches concurrent statements' records behind shared
	// fsyncs, which only helps if the lock is free while waiting.
	unlocked = true
	unlock()
	if len(waits) > 0 {
		tWal := time.Now()
		werr := awaitAll(waits)
		if rec != nil {
			rec.WallSince(obs.ProcQuery, "wal_wait", obs.CatSQL, tid, tWal)
		}
		if werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return nil, nil, err
	}
	return res, streams, nil
}

// awaitAll runs every per-shard durability wait (skipping nils) and
// returns the first failure.
func awaitAll(waits []func() error) error {
	var err error
	for _, w := range waits {
		if w == nil {
			continue
		}
		if e := w(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// updateUnstable reports whether an UPDATE rewrites its table's
// partitioning column. Recorded in the WAL so recovery re-disables point
// routing for the table exactly as route() did before the crash.
func updateUnstable(c *shard.Cluster, s *Update) bool {
	col, _ := c.PartitionColumn(s.Table)
	if col == "" {
		return false
	}
	for _, set := range s.Sets {
		if strings.EqualFold(set.Column, col) {
			return true
		}
	}
	return false
}

func allShards(c *shard.Cluster) []int {
	out := make([]int, c.N())
	for i := range out {
		out[i] = i
	}
	return out
}

// route decides which shards a statement must lock and in which mode.
// Sub-plans of a read-only statement take read locks only when the whole
// statement is read-only and untraced; any mutation (or tracing, whose
// buffer is exclusive DB state) escalates every target to the write lock.
func route(c *shard.Cluster, st Statement, traced bool) (targets []int, exclusive bool) {
	exclusive = traced || !ReadOnly(st)
	switch s := st.(type) {
	case *Select:
		if s.JoinTable != "" {
			return allShards(c), exclusive
		}
		if i, ok := pointShard(c, s.Table, s.Where); ok {
			return []int{i}, exclusive
		}
		return allShards(c), exclusive
	case *Update:
		// Rewriting the partitioning column breaks "stored key predicts
		// placement" for every row it touches: disable point routing for
		// this table up front (permanently) and broadcast the update —
		// broadcasts stay correct regardless of placement.
		if col, _ := c.PartitionColumn(s.Table); col != "" {
			for _, set := range s.Sets {
				if strings.EqualFold(set.Column, col) {
					c.MarkUnstable(s.Table)
					return allShards(c), true
				}
			}
		}
		if i, ok := pointShard(c, s.Table, s.Where); ok {
			return []int{i}, true
		}
		return allShards(c), true
	case *Delete:
		if i, ok := pointShard(c, s.Table, s.Where); ok {
			return []int{i}, true
		}
		return allShards(c), true
	case *Explain:
		if !s.Analyze {
			// Plan description reads one schema; shard 0 stands in for all.
			return []int{0}, exclusive
		}
		return allShards(c), true
	default: // CreateTable, Insert: DDL and row routing touch every shard.
		return allShards(c), true
	}
}

// pointShard reports the single shard that can satisfy a statement whose
// WHERE pins the partitioning column with an equality: the hash placement
// guarantees every matching row lives there, and the remaining conjuncts
// only filter further.
func pointShard(c *shard.Cluster, table string, where []Cond) (int, bool) {
	col, routable := c.PartitionColumn(table)
	if !routable {
		return 0, false
	}
	for _, cond := range where {
		if cond.Op == "=" && strings.EqualFold(cond.Column, col) {
			return c.Partition(cond.Value), true
		}
	}
	return 0, false
}

// lockShards acquires the targets' statement locks in ascending shard
// order and returns the matching unlocker.
func lockShards(c *shard.Cluster, targets []int, exclusive bool) (unlock func()) {
	for _, i := range targets {
		if exclusive {
			c.Shard(i).Lock()
		} else {
			c.Shard(i).RLock()
		}
	}
	return func() {
		for j := len(targets) - 1; j >= 0; j-- {
			if exclusive {
				c.Shard(targets[j]).Unlock()
			} else {
				c.Shard(targets[j]).RUnlock()
			}
		}
	}
}

// dispatchSharded executes a routed statement; locks are already held.
// The returned waits are per-shard durability waits the caller must run
// after releasing the locks (nil/empty when nothing was logged).
func dispatchSharded(c *shard.Cluster, st Statement, src string, targets []int) (*Result, []func() error, error) {
	switch s := st.(type) {
	case *CreateTable:
		return scatterCreate(c, s, src)
	case *Insert:
		return scatterInsert(c, s)
	case *Select:
		if s.JoinTable != "" {
			res, err := scatterJoin(c, s)
			return res, nil, err
		}
		if len(targets) == 1 {
			// Point query: every matching row lives on this shard, and its
			// local row order equals the global order, so the unmodified
			// single-database plan is already the merged answer.
			res, err := runSelect(c.Shard(targets[0]), s)
			return res, nil, err
		}
		res, err := scatterSelect(c, s)
		return res, nil, err
	case *Update:
		return scatterAffected(c, targets, src, updateUnstable(c, s),
			func(db *engine.DB) (*Result, error) { return runUpdate(db, s) })
	case *Delete:
		return scatterAffected(c, targets, src, false,
			func(db *engine.DB) (*Result, error) { return runDelete(db, s) })
	case *Explain:
		return scatterExplain(c, s)
	default:
		return nil, nil, fmt.Errorf("sql: unsupported statement %T", st)
	}
}

func errUnmanaged(table string) error {
	return fmt.Errorf("sql: table %q not managed by the shard cluster", table)
}

// scatterCreate creates the table on every shard and registers it for
// routing. Shard allocators evolve in lockstep (all DDL broadcasts), so
// the shards fail or succeed together; the lowest shard's error wins.
// Every shard logs the statement (with its own failure flag) so replay
// re-creates the table on each shard independently.
func scatterCreate(c *shard.Cluster, s *CreateTable, src string) (*Result, []func() error, error) {
	type slot struct {
		res *Result
		err error
	}
	out := make([]slot, c.N())
	_ = par.RunCells(context.Background(), c.Workers(), c.N(), func(i int) error {
		out[i].res, out[i].err = runCreate(c.Shard(i), s)
		return nil
	})
	var waits []func() error
	if c.Shard(0).CommitLog() != nil {
		waits = make([]func() error, 0, c.N())
		for i := range out {
			if w := logShard(c.Shard(i), src, out[i].err != nil, false); w != nil {
				waits = append(waits, w)
			}
		}
	}
	for i := range out {
		if out[i].err != nil {
			return nil, waits, out[i].err
		}
	}
	c.Register(s.Name, s.Columns[0].Name, s.Columns[0].Words != 1)
	return out[0].res, waits, nil
}

// scatterInsert appends each row on its hash-owner shard, in statement
// order, assigning global row ids as it goes. Sequential on purpose: a
// mid-statement failure must leave exactly the earlier rows inserted,
// like the single-database path. When commit logs are installed, each
// shard's appended rows accumulate into one insert record carrying the
// assigned global ids — flushed even when the statement fails midway, so
// replay reproduces exactly the rows that landed.
func scatterInsert(c *shard.Cluster, s *Insert) (*Result, []func() error, error) {
	if _, err := lookup(c.Shard(0), s.Table); err != nil {
		return nil, nil, err
	}
	if !c.Registered(s.Table) {
		return nil, nil, errUnmanaged(s.Table)
	}
	logged := c.Shard(0).CommitLog() != nil
	var rowsBy [][][]uint64
	var globalsBy [][]int
	if logged {
		rowsBy = make([][][]uint64, c.N())
		globalsBy = make([][]int, c.N())
	}
	flush := func() []func() error {
		if !logged {
			return nil
		}
		var waits []func() error
		for i := 0; i < c.N(); i++ {
			if len(rowsBy[i]) == 0 {
				continue
			}
			wait, err := c.Shard(i).CommitLog().LogInsert(s.Table, rowsBy[i], globalsBy[i])
			switch {
			case err != nil:
				err := err
				waits = append(waits, func() error { return err })
			case wait != nil:
				waits = append(waits, wait)
			}
		}
		return waits
	}
	for ri, row := range s.Rows {
		sh := c.Partition(row[0])
		t, err := lookup(c.Shard(sh), s.Table)
		if err != nil {
			return nil, flush(), err
		}
		local, err := t.Append(row...)
		if err != nil {
			return nil, flush(), fmt.Errorf("sql: row %d: %w", ri+1, err)
		}
		g, err := c.Assign(s.Table, sh, local)
		if err != nil {
			return nil, flush(), err
		}
		if logged {
			rowsBy[sh] = append(rowsBy[sh], row)
			globalsBy[sh] = append(globalsBy[sh], g)
		}
	}
	return &Result{Affected: len(s.Rows)}, flush(), nil
}

// scatterAffected broadcasts a mutation and sums the affected counts.
// Every target runs to completion into its own slot, so the merged error
// (lowest shard) is independent of worker scheduling. Each target logs
// the statement with its own failure flag: even a failed target may have
// partial effects, which deterministic replay reproduces.
func scatterAffected(c *shard.Cluster, targets []int, src string, unstable bool, run func(db *engine.DB) (*Result, error)) (*Result, []func() error, error) {
	if len(targets) == 1 {
		db := c.Shard(targets[0])
		res, err := run(db)
		var waits []func() error
		if w := logShard(db, src, err != nil, unstable); w != nil {
			waits = []func() error{w}
		}
		return res, waits, err
	}
	type slot struct {
		res *Result
		err error
	}
	out := make([]slot, len(targets))
	_ = par.RunCells(context.Background(), c.Workers(), len(targets), func(j int) error {
		out[j].res, out[j].err = run(c.Shard(targets[j]))
		return nil
	})
	var waits []func() error
	if c.Shard(targets[0]).CommitLog() != nil {
		waits = make([]func() error, 0, len(targets))
		for j := range out {
			if w := logShard(c.Shard(targets[j]), src, out[j].err != nil, unstable); w != nil {
				waits = append(waits, w)
			}
		}
	}
	total := 0
	for j := range out {
		if out[j].err != nil {
			return nil, waits, out[j].err
		}
		total += out[j].res.Affected
	}
	return &Result{Affected: total}, waits, nil
}
