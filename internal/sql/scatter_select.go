package sql

// Fan-out SELECT sub-plans and their merges. Each per-shard sub-plan
// follows runSelect's step order exactly (WHERE, ORDER BY key gathering,
// GROUP BY, aggregates, projection validation) so that schema errors
// surface identically on every shard and the merged result — including
// error values — matches the 1-shard baseline byte for byte.

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"rcnvm/internal/config"
	"rcnvm/internal/engine"
	"rcnvm/internal/par"
	"rcnvm/internal/shard"
	"rcnvm/internal/sim"
	"rcnvm/internal/trace"
)

// rowRef locates one matched row: merges order by global id, the row's
// baseline row id.
type rowRef struct {
	global int
	shard  int
	local  int
	key    uint64 // ORDER BY sort key (unused otherwise)
}

// aggCell is one SELECT item's partial aggregate on one shard.
type aggCell struct {
	kind   AggKind
	col    string // resolved column name (output header)
	sum    uint64 // SUM/AVG partial (wraps like the baseline's uint64 sum)
	lo, hi uint64 // MIN/MAX partial
	n      int    // contributing rows (COUNT, AVG divisor, MIN/MAX emptiness)
}

// selPartial is one shard's contribution to a fanned-out SELECT.
type selPartial struct {
	err    error
	refs   []rowRef
	aggs   []aggCell
	groups []engine.GroupRow
}

// selectOnShard runs one shard's sub-plan.
func selectOnShard(c *shard.Cluster, i int, s *Select) selPartial {
	db := c.Shard(i)
	t, err := lookup(db, s.Table)
	if err != nil {
		return selPartial{err: err}
	}
	var rows []int
	if len(s.Where) > 0 {
		if rows, err = evalConds(t, s.Where); err != nil {
			return selPartial{err: err}
		}
	} else {
		rows = t.LiveRows()
	}

	ordered := s.OrderBy != "" && s.GroupBy == ""
	var keys map[int]uint64
	if ordered {
		col, err := resolveColumn(t, s.OrderBy)
		if err != nil {
			return selPartial{err: err}
		}
		_, words, err := t.Schema().FieldOffset(col)
		if err != nil {
			return selPartial{err: err}
		}
		if words != 1 {
			return selPartial{err: fmt.Errorf("sql: ORDER BY on wide field %q", col)}
		}
		keys = make(map[int]uint64, len(rows))
		for _, row := range rows {
			vals, err := t.Field(row, col)
			if err != nil {
				return selPartial{err: err}
			}
			keys[row] = vals[0]
		}
	}

	if s.GroupBy != "" {
		key, aggCol, _, err := groupBySpec(t, s)
		if err != nil {
			return selPartial{err: err}
		}
		groups, err := t.GroupSum(key, aggCol, rows)
		if err != nil {
			return selPartial{err: err}
		}
		return selPartial{groups: groups}
	}

	if hasAggregates(s) {
		cells := make([]aggCell, 0, len(s.Items))
		for _, it := range s.Items {
			switch it.Agg {
			case AggSum:
				col, err := resolveColumn(t, it.Column)
				if err != nil {
					return selPartial{err: err}
				}
				v, err := t.SumField(col, rows)
				if err != nil {
					return selPartial{err: err}
				}
				cells = append(cells, aggCell{kind: AggSum, col: col, sum: v, n: len(rows)})
			case AggAvg:
				col, err := resolveColumn(t, it.Column)
				if err != nil {
					return selPartial{err: err}
				}
				// Partial = raw sum + count; the merge divides once, so the
				// float result is the baseline's single division.
				var v uint64
				if len(rows) > 0 {
					if v, err = t.SumField(col, rows); err != nil {
						return selPartial{err: err}
					}
				}
				cells = append(cells, aggCell{kind: AggAvg, col: col, sum: v, n: len(rows)})
			case AggCount:
				cells = append(cells, aggCell{kind: AggCount, n: len(rows)})
			case AggMin, AggMax:
				col, err := resolveColumn(t, it.Column)
				if err != nil {
					return selPartial{err: err}
				}
				// Validate width even when this shard holds no matches: the
				// baseline rejects wide fields before noticing emptiness.
				_, words, err := t.Schema().FieldOffset(col)
				if err != nil {
					return selPartial{err: err}
				}
				if words != 1 {
					return selPartial{err: fmt.Errorf("engine: MIN/MAX over multi-word field %s", col)}
				}
				cell := aggCell{kind: it.Agg, col: col}
				if len(rows) > 0 {
					lo, hi, err := t.MinMaxField(col, rows)
					if err != nil {
						return selPartial{err: err}
					}
					cell.lo, cell.hi, cell.n = lo, hi, len(rows)
				}
				cells = append(cells, cell)
			default:
				return selPartial{err: fmt.Errorf("sql: cannot mix plain columns with aggregates")}
			}
		}
		return selPartial{aggs: cells}
	}

	// Plain projection: validate the field list here (baseline error
	// position) but project at merge time, in global-row order.
	if _, err := selectFields(t, s); err != nil {
		return selPartial{err: err}
	}
	refs := make([]rowRef, 0, len(rows))
	for _, row := range rows {
		g, ok := c.Global(s.Table, i, row)
		if !ok {
			return selPartial{err: errUnmanaged(s.Table)}
		}
		r := rowRef{global: g, shard: i, local: row}
		if ordered {
			r.key = keys[row]
		}
		refs = append(refs, r)
	}
	// Unordered LIMIT can truncate per shard: local order is global order
	// within a shard, and the merge keeps the lowest globals.
	if !ordered && s.Limit > 0 && s.Limit < len(refs) {
		refs = refs[:s.Limit]
	}
	return selPartial{refs: refs}
}

// scatterSelect fans a non-join SELECT over every shard and merges.
func scatterSelect(c *shard.Cluster, s *Select) (*Result, error) {
	parts := make([]selPartial, c.N())
	_ = par.RunCells(context.Background(), c.Workers(), c.N(), func(i int) error {
		parts[i] = selectOnShard(c, i, s)
		return nil
	})
	return mergeSelect(c, s, parts)
}

// mergeSelect combines per-shard partials into the final Result (locks
// must still be held: merging projects rows out of shard memory). Shared
// with the batch executor, whose grouped fan-out produces the partials for
// several SELECTs in one round trip. The lowest shard's error wins.
func mergeSelect(c *shard.Cluster, s *Select, parts []selPartial) (*Result, error) {
	for i := range parts {
		if parts[i].err != nil {
			return nil, parts[i].err
		}
	}
	if s.GroupBy != "" {
		return mergeGroups(c, s, parts)
	}
	if hasAggregates(s) {
		return mergeAggregates(parts, s)
	}
	return mergeRows(c, s, parts)
}

// mergeGroups re-merges per-shard GroupSum partials by key.
func mergeGroups(c *shard.Cluster, s *Select, parts []selPartial) (*Result, error) {
	t0, err := lookup(c.Shard(0), s.Table)
	if err != nil {
		return nil, err
	}
	key, aggCol, agg, err := groupBySpec(t0, s)
	if err != nil {
		return nil, err
	}
	acc := make(map[uint64]*engine.GroupRow)
	for _, p := range parts {
		for _, g := range p.groups {
			m, ok := acc[g.Key]
			if !ok {
				m = &engine.GroupRow{Key: g.Key}
				acc[g.Key] = m
			}
			m.Sum += g.Sum
			m.Count += g.Count
		}
	}
	merged := make([]engine.GroupRow, 0, len(acc))
	for _, g := range acc {
		merged = append(merged, *g)
	}
	sort.Slice(merged, func(a, b int) bool { return merged[a].Key < merged[b].Key })
	res, err := renderGroups(merged, key, aggCol, agg)
	if err != nil {
		return nil, err
	}
	return applyOrderLimit(res, s)
}

// mergeAggregates combines per-shard aggregate cells item by item.
func mergeAggregates(parts []selPartial, s *Select) (*Result, error) {
	res := &Result{Rows: [][]uint64{nil}}
	res.Floats = make([]float64, 0, len(s.Items))
	for k := range parts[0].aggs {
		cell := parts[0].aggs[k]
		for _, p := range parts[1:] {
			o := p.aggs[k]
			switch cell.kind {
			case AggSum, AggAvg:
				cell.sum += o.sum
				cell.n += o.n
			case AggCount:
				cell.n += o.n
			case AggMin, AggMax:
				if o.n > 0 {
					if cell.n == 0 {
						cell.lo, cell.hi = o.lo, o.hi
					} else {
						if o.lo < cell.lo {
							cell.lo = o.lo
						}
						if o.hi > cell.hi {
							cell.hi = o.hi
						}
					}
					cell.n += o.n
				}
			}
		}
		switch cell.kind {
		case AggSum:
			res.Columns = append(res.Columns, "SUM("+cell.col+")")
			res.Rows[0] = append(res.Rows[0], cell.sum)
			res.Floats = append(res.Floats, 0)
		case AggAvg:
			res.Columns = append(res.Columns, "AVG("+cell.col+")")
			if cell.n == 0 {
				res.Rows[0] = append(res.Rows[0], 0)
				res.Floats = append(res.Floats, 0)
			} else {
				v := float64(cell.sum) / float64(cell.n)
				res.Rows[0] = append(res.Rows[0], uint64(v))
				res.Floats = append(res.Floats, v)
			}
		case AggCount:
			res.Columns = append(res.Columns, "COUNT(*)")
			res.Rows[0] = append(res.Rows[0], uint64(cell.n))
			res.Floats = append(res.Floats, 0)
		case AggMin, AggMax:
			if cell.n == 0 {
				return nil, fmt.Errorf("engine: MIN/MAX over zero rows")
			}
			if cell.kind == AggMin {
				res.Columns = append(res.Columns, "MIN("+cell.col+")")
				res.Rows[0] = append(res.Rows[0], cell.lo)
			} else {
				res.Columns = append(res.Columns, "MAX("+cell.col+")")
				res.Rows[0] = append(res.Rows[0], cell.hi)
			}
			res.Floats = append(res.Floats, 0)
		}
	}
	return res, nil
}

// mergeRows orders gathered row references like the baseline (sort key
// first when ordering, global id as the stable tiebreak and the storage
// order otherwise), truncates, then projects each row on its owner shard.
func mergeRows(c *shard.Cluster, s *Select, parts []selPartial) (*Result, error) {
	var refs []rowRef
	for _, p := range parts {
		refs = append(refs, p.refs...)
	}
	if s.OrderBy != "" {
		desc := s.Desc
		sort.Slice(refs, func(a, b int) bool {
			ka, kb := refs[a].key, refs[b].key
			if ka != kb {
				if desc {
					return ka > kb
				}
				return ka < kb
			}
			return refs[a].global < refs[b].global
		})
	} else {
		sort.Slice(refs, func(a, b int) bool { return refs[a].global < refs[b].global })
	}
	if s.Limit > 0 && s.Limit < len(refs) {
		refs = refs[:s.Limit]
	}
	t0, err := lookup(c.Shard(0), s.Table)
	if err != nil {
		return nil, err
	}
	fields, err := selectFields(t0, s)
	if err != nil {
		return nil, err
	}
	out := make([][]uint64, 0, len(refs))
	for _, r := range refs {
		t, err := lookup(c.Shard(r.shard), s.Table)
		if err != nil {
			return nil, err
		}
		vals, err := t.Project([]int{r.local}, fields)
		if err != nil {
			return nil, err
		}
		out = append(out, vals[0])
	}
	return &Result{Columns: fields, Rows: out}, nil
}

// keyedRow is one live row of a join side: its key value plus location.
type keyedRow struct {
	global int
	shard  int
	local  int
	key    uint64
}

// joinKeysOnShard gathers (global id, key) for every live row of table on
// shard i, reading the key column in scan orientation like engine.Join.
func joinKeysOnShard(c *shard.Cluster, i int, table, col string) ([]keyedRow, error) {
	t, err := lookup(c.Shard(i), table)
	if err != nil {
		return nil, err
	}
	live := t.LiveRows()
	keys := make([]uint64, 0, len(live))
	// ScanWhere visits exactly the live rows in ascending order; a
	// never-matching predicate turns it into a pure column scan.
	if _, err := t.ScanWhere(col, func(vals []uint64) bool {
		keys = append(keys, vals[0])
		return false
	}); err != nil {
		return nil, err
	}
	out := make([]keyedRow, len(live))
	for j, row := range live {
		g, ok := c.Global(table, i, row)
		if !ok {
			return nil, errUnmanaged(table)
		}
		out[j] = keyedRow{global: g, shard: i, local: row, key: keys[j]}
	}
	return out, nil
}

// gatherJoinKeys fans joinKeysOnShard over the cluster and returns the
// rows merged into ascending global order — the baseline's scan order.
func gatherJoinKeys(c *shard.Cluster, table, col string) ([]keyedRow, error) {
	type slot struct {
		rows []keyedRow
		err  error
	}
	out := make([]slot, c.N())
	_ = par.RunCells(context.Background(), c.Workers(), c.N(), func(i int) error {
		out[i].rows, out[i].err = joinKeysOnShard(c, i, table, col)
		return nil
	})
	var all []keyedRow
	for i := range out {
		if out[i].err != nil {
			return nil, out[i].err
		}
		all = append(all, out[i].rows...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].global < all[b].global })
	return all, nil
}

// scatterJoin gathers both sides' keys shard by shard, then builds and
// probes in global-row order exactly as engine.Join does in storage
// order, projecting each output row from its owner shard.
func scatterJoin(c *shard.Cluster, s *Select) (*Result, error) {
	a0, err := lookup(c.Shard(0), s.Table)
	if err != nil {
		return nil, err
	}
	b0, err := lookup(c.Shard(0), s.JoinTable)
	if err != nil {
		return nil, err
	}
	left, err := resolveColumn(a0, s.JoinLeft)
	if err != nil {
		return nil, err
	}
	right, err := resolveColumn(b0, s.JoinRight)
	if err != nil {
		return nil, err
	}
	_, wa, err := a0.Schema().FieldOffset(left)
	if err != nil {
		return nil, err
	}
	_, wb, err := b0.Schema().FieldOffset(right)
	if err != nil {
		return nil, err
	}
	if wa != 1 || wb != 1 {
		return nil, fmt.Errorf("engine: join keys must be single-word fields")
	}

	as, err := gatherJoinKeys(c, s.Table, left)
	if err != nil {
		return nil, err
	}
	bs, err := gatherJoinKeys(c, s.JoinTable, right)
	if err != nil {
		return nil, err
	}
	build := make(map[uint64][]keyedRow)
	for _, ar := range as {
		build[ar.key] = append(build[ar.key], ar)
	}
	var pairs [][2]keyedRow
	for _, br := range bs {
		for _, ar := range build[br.key] {
			pairs = append(pairs, [2]keyedRow{ar, br})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0].global != pairs[j][0].global {
			return pairs[i][0].global < pairs[j][0].global
		}
		return pairs[i][1].global < pairs[j][1].global
	})

	res := &Result{}
	for _, q := range s.JoinItems {
		res.Columns = append(res.Columns, q.Table+"."+q.Column)
	}
	for _, pr := range pairs {
		var row []uint64
		for _, q := range s.JoinItems {
			var kr keyedRow
			var table string
			switch {
			case strings.EqualFold(q.Table, s.Table):
				kr, table = pr[0], s.Table
			case strings.EqualFold(q.Table, s.JoinTable):
				kr, table = pr[1], s.JoinTable
			default:
				return nil, fmt.Errorf("sql: projection table %q not in FROM/JOIN", q.Table)
			}
			t, err := lookup(c.Shard(kr.shard), table)
			if err != nil {
				return nil, err
			}
			col, err := resolveColumn(t, q.Column)
			if err != nil {
				return nil, err
			}
			vals, err := t.Field(kr.local, col)
			if err != nil {
				return nil, err
			}
			row = append(row, vals...)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// scatterExplain describes the plan once (schemas are identical on every
// shard) under a sharding header. ANALYZE executes the inner statement
// through the sharded path with per-shard tracing, then replays each
// shard's stream on its own simulated channel: the statement finishes
// when its slowest shard does, so the estimate is the max over shards.
func scatterExplain(c *shard.Cluster, ex *Explain) (*Result, []func() error, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "scatter over %d shards\n", c.N())
	describe(c.Shard(0), ex.Stmt, &b)

	if !ex.Analyze {
		return &Result{Message: strings.TrimRight(b.String(), "\n")}, nil, nil
	}

	targets := allShards(c)
	for _, i := range targets {
		c.Shard(i).StartTrace()
	}
	// The inner dispatch logs any mutation under the inner statement's own
	// text, printed from the parsed AST (round-trip property): replay must
	// re-execute the mutation, not re-time it.
	_, waits, runErr := dispatchSharded(c, ex.Stmt, StatementText(ex.Stmt), targets)
	streams := make([]trace.Stream, c.N())
	for _, i := range targets {
		streams[i] = c.Shard(i).StopTrace()
	}
	if runErr != nil {
		return nil, waits, runErr
	}
	total := 0
	for _, st := range streams {
		total += st.MemOps()
	}
	fmt.Fprintf(&b, "actual: %d memory ops across %d shards", total, c.N())
	if total > 0 {
		var dualMax, rowMax int64
		for _, st := range streams {
			if st.MemOps() == 0 {
				continue
			}
			dual, err := sim.RunOn(config.RCNVM(), []trace.Stream{st})
			if err != nil {
				return nil, waits, err
			}
			row, err := sim.RunOn(config.RCNVM(), []trace.Stream{engine.RowOnlyStream(st)})
			if err != nil {
				return nil, waits, err
			}
			if dual.TimePs > dualMax {
				dualMax = dual.TimePs
			}
			if row.TimePs > rowMax {
				rowMax = row.TimePs
			}
		}
		fmt.Fprintf(&b, "; est. %.1f us with column accesses, %.1f us row-only (%.2fx), slowest shard",
			float64(dualMax)/1e6, float64(rowMax)/1e6, float64(rowMax)/float64(dualMax))
	}
	return &Result{Message: b.String()}, waits, nil
}
