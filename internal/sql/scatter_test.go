package sql

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"rcnvm/internal/ecc"
	"rcnvm/internal/engine"
	"rcnvm/internal/fault"
	"rcnvm/internal/shard"
	"rcnvm/internal/workload"
)

// newSuiteCluster builds an n-shard cluster loaded with the workload SQL
// suite's tables and data.
func newSuiteCluster(t *testing.T, n, workers int) *shard.Cluster {
	t.Helper()
	c, err := shard.Open(engine.DualAddress, n, workers)
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range workload.SQLSetup() {
		if _, err := ExecSharded(c, stmt); err != nil {
			t.Fatalf("setup %q: %v", stmt[:40], err)
		}
	}
	return c
}

// suiteTranscript executes the ordered query suite and returns one
// formatted result per query.
func suiteTranscript(t *testing.T, c *shard.Cluster) []string {
	t.Helper()
	var out []string
	for _, q := range workload.SQLQueries() {
		res, err := ExecSharded(c, q.SQL)
		if err != nil {
			t.Fatalf("%s (%d shards): %v", q.ID, c.N(), err)
		}
		out = append(out, q.ID+"\n"+res.Format())
	}
	return out
}

// TestShardEquivalenceWorkloadSuite: the whole ordered suite — scans,
// aggregates, group-bys, ordered selects, joins, point and broadcast
// mutations — must produce byte-identical transcripts on 2-, 3- and
// 4-shard clusters and on the 1-shard baseline.
func TestShardEquivalenceWorkloadSuite(t *testing.T) {
	base := suiteTranscript(t, newSuiteCluster(t, 1, 1))
	for _, n := range []int{2, 3, 4} {
		got := suiteTranscript(t, newSuiteCluster(t, n, 4))
		if len(got) != len(base) {
			t.Fatalf("%d shards: %d results, baseline %d", n, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Errorf("%d shards: result diverges from baseline:\n--- 1 shard\n%s\n--- %d shards\n%s",
					n, base[i], n, got[i])
			}
		}
	}
}

// TestShardEquivalenceAcrossWorkers: the same cluster size must render the
// same transcript regardless of fan-out width — slotted sub-plan results
// make worker scheduling invisible.
func TestShardEquivalenceAcrossWorkers(t *testing.T) {
	one := suiteTranscript(t, newSuiteCluster(t, 4, 1))
	eight := suiteTranscript(t, newSuiteCluster(t, 4, 8))
	for i := range one {
		if one[i] != eight[i] {
			t.Errorf("workers=1 vs workers=8 diverge:\n--- w=1\n%s\n--- w=8\n%s", one[i], eight[i])
		}
	}
}

// TestShardEquivalenceErrors: statements that fail must fail with the
// same error text on every cluster size (schema errors surface
// identically on every shard; the merge picks the lowest shard's error).
func TestShardEquivalenceErrors(t *testing.T) {
	base := newSuiteCluster(t, 1, 1)
	for _, n := range []int{2, 4} {
		c := newSuiteCluster(t, n, 4)
		for _, q := range workload.SQLErrorQueries() {
			_, errBase := ExecSharded(base, q.SQL)
			_, errN := ExecSharded(c, q.SQL)
			if errBase == nil || errN == nil {
				t.Fatalf("%s: expected errors, got base=%v, %d shards=%v", q.ID, errBase, n, errN)
			}
			if errBase.Error() != errN.Error() {
				t.Errorf("%s: error diverges:\n--- 1 shard\n%s\n--- %d shards\n%s",
					q.ID, errBase, n, errN)
			}
		}
	}
}

// TestShardEquivalenceUnderFault targets the *same logical cell* (global
// row 10, word 8 = table_a.f9) on a 1-shard and a 3-shard cluster via the
// registry's owner lookup. One stuck bit is always corrected, so results
// stay byte-identical; two stuck bits are always uncorrectable, and both
// cluster sizes must surface ecc.ErrUncorrectable. (Error *text* embeds
// physical coordinates, which legitimately differ across placements.)
func TestShardEquivalenceUnderFault(t *testing.T) {
	const probe = "SELECT SUM(f9), COUNT(*) FROM table_a"
	for _, bits := range []int{1, 2} {
		base := newSuiteCluster(t, 1, 1)
		clean, err := ExecSharded(base, probe)
		if err != nil {
			t.Fatal(err)
		}

		addStuck := func(c *shard.Cluster) {
			c.EnableFaults(fault.Config{Enabled: true, Seed: 7})
			sh, local := 0, 10
			if c.N() > 1 {
				var ok bool
				sh, local, ok = c.Owner("table_a", 10)
				if !ok {
					t.Fatal("global row 10 has no owner")
				}
			}
			tab, ok := c.Shard(sh).Table("table_a")
			if !ok {
				t.Fatal("table_a missing")
			}
			c.Shard(sh).Faults().AddStuck(tab.CellCoord(local, 8), bits)
		}

		addStuck(base)
		resBase, errBase := ExecSharded(base, probe)

		sharded := newSuiteCluster(t, 3, 4)
		addStuck(sharded)
		resN, errN := ExecSharded(sharded, probe)

		switch bits {
		case 1: // always corrected: same answer as the fault-free run
			if errBase != nil || errN != nil {
				t.Fatalf("bits=1: unexpected errors %v / %v", errBase, errN)
			}
			if resBase.Format() != clean.Format() || resN.Format() != clean.Format() {
				t.Errorf("bits=1: corrected results diverge:\nclean\n%scorrupt base\n%scorrupt 3-shard\n%s",
					clean.Format(), resBase.Format(), resN.Format())
			}
		case 2: // always uncorrectable on both cluster sizes
			if !errors.Is(errBase, ecc.ErrUncorrectable) {
				t.Errorf("bits=2: baseline error = %v, want uncorrectable", errBase)
			}
			if !errors.Is(errN, ecc.ErrUncorrectable) {
				t.Errorf("bits=2: 3-shard error = %v, want uncorrectable", errN)
			}
		}
	}
}

// TestScatterPointRouting: an equality on the partitioning column must
// run on exactly one shard, and stop doing so once an UPDATE rewrites
// that column.
func TestScatterPointRouting(t *testing.T) {
	c := newSuiteCluster(t, 4, 2)
	st, err := Parse("SELECT * FROM table_a WHERE f1 = 123")
	if err != nil {
		t.Fatal(err)
	}
	targets, exclusive := route(c, st, false)
	if len(targets) != 1 || exclusive {
		t.Fatalf("point SELECT routed to %v (exclusive=%v), want one shard shared", targets, exclusive)
	}
	if want := c.Partition(123); targets[0] != want {
		t.Fatalf("point SELECT routed to shard %d, want %d", targets[0], want)
	}
	// Rewriting f1 permanently disables point routing for the table.
	if _, err := ExecSharded(c, "UPDATE table_a SET f1 = 5 WHERE f2 = 777"); err != nil {
		t.Fatal(err)
	}
	targets, _ = route(c, st, false)
	if len(targets) != c.N() {
		t.Fatalf("after partition-column rewrite: routed to %v, want broadcast", targets)
	}
}

// TestScatterSubPlanLockModes: the lock mode a fanned-out sub-plan takes
// must agree with the statement's read-only classification — a mutating
// statement may never reach a shard under a read lock, and tracing always
// escalates to exclusive.
func TestScatterSubPlanLockModes(t *testing.T) {
	c := newSuiteCluster(t, 2, 2)
	cases := []struct {
		src       string
		exclusive bool
	}{
		{"SELECT COUNT(*) FROM table_a", false},
		{"SELECT f16, SUM(f9) FROM table_a GROUP BY f16", false},
		{"SELECT table_a.f3, table_b.f4 FROM table_a JOIN table_b ON table_a.f9 = table_b.f9", false},
		{"EXPLAIN SELECT * FROM table_a", false},
		{"INSERT INTO table_a VALUES (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)", true},
		{"UPDATE table_a SET f3 = 1", true},
		{"UPDATE table_a SET f3 = 1 WHERE f1 = 9", true},
		{"DELETE FROM table_b WHERE f10 = 1", true},
		{"CREATE TABLE zz (a, b)", true},
		{"EXPLAIN ANALYZE SELECT * FROM table_a", true},
	}
	for _, tc := range cases {
		st, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if _, exclusive := route(c, st, false); exclusive != tc.exclusive {
			t.Errorf("%s: exclusive=%v, want %v", tc.src, exclusive, tc.exclusive)
		}
		if ro := ReadOnly(st); ro == tc.exclusive {
			t.Errorf("%s: ReadOnly=%v contradicts required lock mode", tc.src, ro)
		}
		// Tracing must force exclusive locks regardless of classification.
		if _, exclusive := route(c, st, true); !exclusive {
			t.Errorf("%s: traced sub-plan got a read lock", tc.src)
		}
	}
}

// TestScatterConcurrentPointAndFanout hammers a 2-shard cluster with
// point updates, broadcast updates and fanned-out reads. Run under -race:
// it fails if any sub-plan mutates engine state while holding only a read
// lock.
func TestScatterConcurrentPointAndFanout(t *testing.T) {
	c := newSuiteCluster(t, 2, 4)
	const iters = 120
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 4; g++ {
		wg.Add(3)
		go func(g int) { // point updates
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := fmt.Sprintf("UPDATE table_a SET f3 = %d WHERE f1 = %d", i, (g*31+i)%1000)
				if _, err := ExecSharded(c, q); err != nil {
					errs <- err
					return
				}
			}
		}(g)
		go func() { // fanned-out aggregate reads
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := ExecSharded(c, "SELECT SUM(f3), COUNT(*) FROM table_a"); err != nil {
					errs <- err
					return
				}
			}
		}()
		go func(g int) { // broadcast updates
			defer wg.Done()
			for i := 0; i < iters/4; i++ {
				q := fmt.Sprintf("UPDATE table_a SET f4 = %d WHERE f2 > 500", g)
				if _, err := ExecSharded(c, q); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestAggregateEmptyWhereRegression pins the evalConds fix: a WHERE that
// matches nothing must aggregate nothing — before the fix, the nil row
// set from ScanWhere made SUM/MIN/MAX/GROUP BY fall back to "all rows".
func TestAggregateEmptyWhereRegression(t *testing.T) {
	db, err := engine.Open(engine.DualAddress)
	if err != nil {
		t.Fatal(err)
	}
	mustExec := func(q string) *Result {
		res, err := Exec(db, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return res
	}
	mustExec("CREATE TABLE t (a, b)")
	mustExec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")

	if got := mustExec("SELECT SUM(b), COUNT(*) FROM t WHERE a = 99"); got.Rows[0][0] != 0 || got.Rows[0][1] != 0 {
		t.Errorf("no-match SUM/COUNT = %v, want [0 0]", got.Rows[0])
	}
	if got := mustExec("SELECT a, SUM(b) FROM t WHERE a = 99 GROUP BY a"); len(got.Rows) != 0 {
		t.Errorf("no-match GROUP BY returned %d groups, want 0", len(got.Rows))
	}
	if _, err := Exec(db, "SELECT MIN(b) FROM t WHERE a = 99"); err == nil {
		t.Error("no-match MIN succeeded, want zero-rows error")
	}
	// Sanity: matching WHERE still aggregates.
	if got := mustExec("SELECT SUM(b) FROM t WHERE a > 1"); got.Rows[0][0] != 50 {
		t.Errorf("SUM over matches = %d, want 50", got.Rows[0][0])
	}
}
