package sql

import (
	"fmt"
	"time"

	"rcnvm/internal/engine"
	"rcnvm/internal/obs"
	"rcnvm/internal/trace"
)

// This file is the concurrency boundary of the SQL layer: engine.DB
// carries an RWMutex but its methods do not lock it themselves (see the
// engine.DB doc comment), so statements that should execute atomically
// against a shared database go through ExecLocked or ExecTraced, which
// hold the lock for the whole statement. Plain Exec/Run stay unlocked for
// single-threaded callers.
//
// It is also the durability boundary: when a commit log is installed on
// the database (engine.DB.SetCommitLog, done by internal/durable), every
// mutating statement is appended to the WAL while the exclusive lock is
// still held — so per-log record order equals commit order — and the
// caller then waits for the fsync AFTER releasing the lock, so concurrent
// statements batch their fsyncs behind the log's single flusher instead
// of serializing on the disk. With no log installed (the default), the
// paths below are unchanged: one nil check, no allocation.

// ReadOnly reports whether a statement only reads database state, and may
// therefore run under the shared (read) lock concurrently with other
// readers. EXPLAIN ANALYZE is a writer: it records an access trace, which
// is exclusive state on the DB.
func ReadOnly(st Statement) bool {
	switch s := st.(type) {
	case *Select:
		return true
	case *Explain:
		return !s.Analyze
	default:
		return false
	}
}

// ReadOnlySrc reports whether src parses and is read-only — the shared
// classification clients and routers use to decide whether a statement is
// safe to resend with unknown execution state, or to serve from a read
// replica. Unparseable statements classify as NOT read-only: the server's
// parser may accept what ours rejects, so the conservative answer routes
// them to the primary and never resends them blindly.
func ReadOnlySrc(src string) bool {
	st, err := Parse(src)
	return err == nil && ReadOnly(st)
}

// mutates reports whether a statement changes database state that
// recovery must reproduce. EXPLAIN ANALYZE executes its inner statement,
// so it mutates exactly when the inner statement does.
func mutates(st Statement) bool {
	switch s := st.(type) {
	case *CreateTable, *Insert, *Update, *Delete:
		return true
	case *Explain:
		return s.Analyze && mutates(s.Stmt)
	}
	return false
}

// logShard appends one statement record on db's commit log. Nil-safe and
// allocation-free when no log is installed. An append failure surfaces
// through the returned wait: the statement has already executed, so a
// logging failure is a durability failure, not an execution failure.
func logShard(db *engine.DB, src string, failed, unstable bool) func() error {
	l := db.CommitLog()
	if l == nil {
		return nil
	}
	wait, err := l.LogStatement(src, failed, unstable)
	if err != nil {
		return func() error { return err }
	}
	return wait
}

// logCommit records a mutating statement on a single database's commit
// log (the unsharded / 1-shard path). Call with the exclusive lock held,
// immediately after Run; execErr marks failed statements so recovery
// replays their partial effects leniently.
func logCommit(db *engine.DB, st Statement, src string, execErr error) func() error {
	if db.CommitLog() == nil || !mutates(st) {
		return nil
	}
	if ex, ok := st.(*Explain); ok && ex.Analyze {
		// The WAL records the inner mutation's own text: replay must
		// re-execute the mutation, not re-time it. Printed from the parsed
		// AST (round-trip property) rather than re-derived from the source.
		src = StatementText(ex.Stmt)
	}
	return logShard(db, src, execErr != nil, false)
}

// awaitDurable runs a durability wait (nil = already durable). Call after
// releasing the statement lock.
func awaitDurable(wait func() error) error {
	if wait == nil {
		return nil
	}
	return wait()
}

// ExecLocked parses and executes one statement while holding db's lock in
// the mode the statement requires: the read lock for read-only statements
// (concurrent SELECTs proceed in parallel), the write lock for everything
// that mutates. Mutations are WAL-logged under the lock and waited for
// durability after it.
func ExecLocked(db *engine.DB, src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return runLocked(db, st, src)
}

// runLocked is ExecLocked past the parse: it executes an already-parsed
// statement under the lock mode the statement requires. The statement may
// be a shared plan-cache template; it is never mutated.
func runLocked(db *engine.DB, st Statement, src string) (*Result, error) {
	if ReadOnly(st) {
		db.RLock()
		defer db.RUnlock()
		return Run(db, st)
	}
	db.Lock()
	res, err := Run(db, st)
	wait := logCommit(db, st, src, err)
	db.Unlock()
	if werr := awaitDurable(wait); werr != nil && err == nil {
		return nil, werr
	}
	return res, err
}

// ExecObserved is ExecLocked with wall-clock phase spans (parse,
// lock_wait, exec, and wal_wait when a commit log is installed) recorded
// under process obs.ProcQuery on lane tid. A nil recorder degrades to
// plain ExecLocked.
func ExecObserved(db *engine.DB, src string, rec *obs.Recorder, tid int64) (*Result, error) {
	if rec == nil {
		return ExecLocked(db, src)
	}
	t0 := time.Now()
	st, err := Parse(src)
	rec.WallSince(obs.ProcQuery, "parse", obs.CatSQL, tid, t0)
	if err != nil {
		return nil, err
	}
	return runObserved(db, st, src, rec, tid)
}

// runObserved is ExecObserved past the parse (the caller has already
// recorded its own parse span).
func runObserved(db *engine.DB, st Statement, src string, rec *obs.Recorder, tid int64) (*Result, error) {
	if rec == nil {
		return runLocked(db, st, src)
	}
	tLock := time.Now()
	if ReadOnly(st) {
		db.RLock()
		defer db.RUnlock()
		rec.WallSince(obs.ProcQuery, "lock_wait", obs.CatSQL, tid, tLock)
		tExec := time.Now()
		res, err := Run(db, st)
		rec.WallSince(obs.ProcQuery, "exec", obs.CatSQL, tid, tExec)
		return res, err
	}
	db.Lock()
	rec.WallSince(obs.ProcQuery, "lock_wait", obs.CatSQL, tid, tLock)
	tExec := time.Now()
	res, err := Run(db, st)
	wait := logCommit(db, st, src, err)
	rec.WallSince(obs.ProcQuery, "exec", obs.CatSQL, tid, tExec)
	db.Unlock()
	if wait != nil {
		tWal := time.Now()
		werr := wait()
		rec.WallSince(obs.ProcQuery, "wal_wait", obs.CatSQL, tid, tWal)
		if werr != nil && err == nil {
			return nil, werr
		}
	}
	return res, err
}

// ExecTracedObserved is ExecTraced with the same wall-clock phase spans as
// ExecObserved. A nil recorder degrades to plain ExecTraced.
func ExecTracedObserved(db *engine.DB, src string, rec *obs.Recorder, tid int64) (*Result, trace.Stream, error) {
	if rec == nil {
		return ExecTraced(db, src)
	}
	t0 := time.Now()
	st, err := Parse(src)
	rec.WallSince(obs.ProcQuery, "parse", obs.CatSQL, tid, t0)
	if err != nil {
		return nil, nil, err
	}
	if _, ok := st.(*Explain); ok {
		return nil, nil, fmt.Errorf("sql: EXPLAIN already reports timing; run it untraced")
	}
	tLock := time.Now()
	db.Lock()
	rec.WallSince(obs.ProcQuery, "lock_wait", obs.CatSQL, tid, tLock)
	tExec := time.Now()
	db.StartTrace()
	res, err := Run(db, st)
	stream := db.StopTrace()
	wait := logCommit(db, st, src, err)
	rec.WallSince(obs.ProcQuery, "exec", obs.CatSQL, tid, tExec)
	db.Unlock()
	if werr := awaitDurable(wait); werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		return nil, nil, err
	}
	return res, stream, nil
}

// ExecTraced parses and executes one statement under the exclusive lock
// with access recording on, returning the recorded memory-access stream
// alongside the result. The exclusive lock is required even for SELECTs:
// the trace buffer is shared DB state, and a concurrent statement would
// interleave its accesses into the recording.
func ExecTraced(db *engine.DB, src string) (*Result, trace.Stream, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	if _, ok := st.(*Explain); ok {
		return nil, nil, fmt.Errorf("sql: EXPLAIN already reports timing; run it untraced")
	}
	db.Lock()
	db.StartTrace()
	res, err := Run(db, st)
	stream := db.StopTrace()
	wait := logCommit(db, st, src, err)
	db.Unlock()
	if werr := awaitDurable(wait); werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		return nil, nil, err
	}
	return res, stream, nil
}
