package sql

import (
	"fmt"
	"time"

	"rcnvm/internal/engine"
	"rcnvm/internal/obs"
	"rcnvm/internal/trace"
)

// This file is the concurrency boundary of the SQL layer: engine.DB
// carries an RWMutex but its methods do not lock it themselves (see the
// engine.DB doc comment), so statements that should execute atomically
// against a shared database go through ExecLocked or ExecTraced, which
// hold the lock for the whole statement. Plain Exec/Run stay unlocked for
// single-threaded callers.

// ReadOnly reports whether a statement only reads database state, and may
// therefore run under the shared (read) lock concurrently with other
// readers. EXPLAIN ANALYZE is a writer: it records an access trace, which
// is exclusive state on the DB.
func ReadOnly(st Statement) bool {
	switch s := st.(type) {
	case *Select:
		return true
	case *Explain:
		return !s.Analyze
	default:
		return false
	}
}

// ExecLocked parses and executes one statement while holding db's lock in
// the mode the statement requires: the read lock for read-only statements
// (concurrent SELECTs proceed in parallel), the write lock for everything
// that mutates.
func ExecLocked(db *engine.DB, src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if ReadOnly(st) {
		db.RLock()
		defer db.RUnlock()
	} else {
		db.Lock()
		defer db.Unlock()
	}
	return Run(db, st)
}

// ExecObserved is ExecLocked with wall-clock phase spans (parse,
// lock_wait, exec) recorded under process obs.ProcQuery on lane tid. A nil
// recorder degrades to plain ExecLocked.
func ExecObserved(db *engine.DB, src string, rec *obs.Recorder, tid int64) (*Result, error) {
	if rec == nil {
		return ExecLocked(db, src)
	}
	t0 := time.Now()
	st, err := Parse(src)
	rec.WallSince(obs.ProcQuery, "parse", obs.CatSQL, tid, t0)
	if err != nil {
		return nil, err
	}
	tLock := time.Now()
	if ReadOnly(st) {
		db.RLock()
		defer db.RUnlock()
	} else {
		db.Lock()
		defer db.Unlock()
	}
	rec.WallSince(obs.ProcQuery, "lock_wait", obs.CatSQL, tid, tLock)
	tExec := time.Now()
	res, err := Run(db, st)
	rec.WallSince(obs.ProcQuery, "exec", obs.CatSQL, tid, tExec)
	return res, err
}

// ExecTracedObserved is ExecTraced with the same wall-clock phase spans as
// ExecObserved. A nil recorder degrades to plain ExecTraced.
func ExecTracedObserved(db *engine.DB, src string, rec *obs.Recorder, tid int64) (*Result, trace.Stream, error) {
	if rec == nil {
		return ExecTraced(db, src)
	}
	t0 := time.Now()
	st, err := Parse(src)
	rec.WallSince(obs.ProcQuery, "parse", obs.CatSQL, tid, t0)
	if err != nil {
		return nil, nil, err
	}
	if _, ok := st.(*Explain); ok {
		return nil, nil, fmt.Errorf("sql: EXPLAIN already reports timing; run it untraced")
	}
	tLock := time.Now()
	db.Lock()
	defer db.Unlock()
	rec.WallSince(obs.ProcQuery, "lock_wait", obs.CatSQL, tid, tLock)
	tExec := time.Now()
	db.StartTrace()
	res, err := Run(db, st)
	stream := db.StopTrace()
	rec.WallSince(obs.ProcQuery, "exec", obs.CatSQL, tid, tExec)
	if err != nil {
		return nil, nil, err
	}
	return res, stream, nil
}

// ExecTraced parses and executes one statement under the exclusive lock
// with access recording on, returning the recorded memory-access stream
// alongside the result. The exclusive lock is required even for SELECTs:
// the trace buffer is shared DB state, and a concurrent statement would
// interleave its accesses into the recording.
func ExecTraced(db *engine.DB, src string) (*Result, trace.Stream, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	if _, ok := st.(*Explain); ok {
		return nil, nil, fmt.Errorf("sql: EXPLAIN already reports timing; run it untraced")
	}
	db.Lock()
	defer db.Unlock()
	db.StartTrace()
	res, err := Run(db, st)
	stream := db.StopTrace()
	if err != nil {
		return nil, nil, err
	}
	return res, stream, nil
}
