package sql

import (
	"reflect"
	"strings"
	"testing"

	"rcnvm/internal/engine"
)

func newDB(t *testing.T) *engine.DB {
	t.Helper()
	db, err := engine.Open(engine.DualAddress)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mustExec(t *testing.T, db *engine.DB, src string) *Result {
	t.Helper()
	res, err := Exec(db, src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return res
}

func seed(t *testing.T, db *engine.DB) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE person (id, age, salary, dept) CAPACITY 1024")
	mustExec(t, db, `INSERT INTO person VALUES
		(1, 30, 1000, 1),
		(2, 55, 2500, 2),
		(3, 41, 1800, 1),
		(4, 25,  900, 3),
		(5, 60, 3000, 2)`)
}

func TestCreateInsertSelectStar(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res := mustExec(t, db, "SELECT * FROM person")
	if len(res.Rows) != 5 || len(res.Columns) != 4 {
		t.Fatalf("select * = %dx%d", len(res.Rows), len(res.Columns))
	}
	if !reflect.DeepEqual(res.Rows[1], []uint64{2, 55, 2500, 2}) {
		t.Fatalf("row 1 = %v", res.Rows[1])
	}
}

func TestSelectWhere(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res := mustExec(t, db, "SELECT id, salary FROM person WHERE age > 30 AND dept = 2")
	want := [][]uint64{{2, 2500}, {5, 3000}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
}

func TestOperators(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	for src, want := range map[string]int{
		"SELECT id FROM person WHERE age = 41":  1,
		"SELECT id FROM person WHERE age != 41": 4,
		"SELECT id FROM person WHERE age <= 30": 2,
		"SELECT id FROM person WHERE age >= 55": 2,
		"SELECT id FROM person WHERE age < 25":  0,
	} {
		if got := len(mustExec(t, db, src).Rows); got != want {
			t.Errorf("%s -> %d rows, want %d", src, got, want)
		}
	}
}

func TestAggregates(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res := mustExec(t, db, "SELECT SUM(salary), COUNT(*) FROM person WHERE dept = 1")
	if res.Rows[0][0] != 2800 || res.Rows[0][1] != 2 {
		t.Fatalf("aggregates = %v", res.Rows[0])
	}
	res = mustExec(t, db, "SELECT AVG(age) FROM person")
	if res.Floats[0] != (30+55+41+25+60)/5.0 {
		t.Fatalf("avg = %v", res.Floats[0])
	}
	// Formatting shows the float.
	if !strings.Contains(res.Format(), "42.20") {
		t.Fatalf("format missing avg: %q", res.Format())
	}
}

func TestUpdate(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res := mustExec(t, db, "UPDATE person SET salary = 5000, dept = 9 WHERE age >= 55")
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	check := mustExec(t, db, "SELECT salary, dept FROM person WHERE dept = 9")
	if len(check.Rows) != 2 || check.Rows[0][0] != 5000 {
		t.Fatalf("post-update rows = %v", check.Rows)
	}
}

func TestJoin(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	mustExec(t, db, "CREATE TABLE dept (did, budget) CAPACITY 16")
	mustExec(t, db, "INSERT INTO dept VALUES (1, 11), (2, 22), (3, 33)")
	res := mustExec(t, db, "SELECT person.id, dept.budget FROM person JOIN dept ON person.dept = dept.did")
	if len(res.Rows) != 5 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	// person 4 (dept 3) pairs with budget 33.
	found := false
	for _, r := range res.Rows {
		if r[0] == 4 && r[1] == 33 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing pair in %v", res.Rows)
	}
	// Reversed ON order also parses.
	res2 := mustExec(t, db, "SELECT dept.budget, person.id FROM person JOIN dept ON dept.did = person.dept")
	if len(res2.Rows) != 5 || res2.Columns[0] != "dept.budget" {
		t.Fatalf("reversed join = %v %v", res2.Columns, res2.Rows)
	}
}

func TestWideColumn(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, "CREATE TABLE c (id, email WIDE 4) CAPACITY 64")
	mustExec(t, db, "INSERT INTO c VALUES (1, 100, 101, 102, 103)")
	res := mustExec(t, db, "SELECT email FROM c")
	if !reflect.DeepEqual(res.Rows[0], []uint64{100, 101, 102, 103}) {
		t.Fatalf("wide select = %v", res.Rows[0])
	}
	if _, err := Exec(db, "SELECT SUM(email) FROM c"); err == nil {
		t.Fatal("SUM over wide field accepted")
	}
	if _, err := Exec(db, "SELECT id FROM c WHERE email > 5"); err == nil {
		t.Fatal("WHERE over wide field accepted")
	}
}

func TestParseErrors(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	for _, src := range []string{
		"",
		"DROP TABLE person",
		"SELECT FROM person",
		"SELECT id FROM",
		"SELECT id FROM person WHERE",
		"SELECT id FROM person WHERE age ! 3",
		"INSERT INTO person (1,2)",
		"CREATE TABLE t (a WIDE 0)",
		"SELECT id FROM person trailing",
		"SELECT person.id FROM person",
		"SELECT COUNT(id) FROM person",
	} {
		if _, err := Exec(db, src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestExecErrors(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	for _, src := range []string{
		"SELECT id FROM missing",
		"SELECT nope FROM person",
		"INSERT INTO person VALUES (1, 2)", // wrong arity
		"CREATE TABLE person (x)",          // duplicate
		"UPDATE person SET nope = 1",
		"SELECT a.id, b.x FROM person JOIN missing ON person.id = missing.x",
	} {
		if _, err := Exec(db, src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestSemicolonAndCase(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, "create table T (A, B) capacity 8;")
	mustExec(t, db, "insert into T values (7, 8);")
	res := mustExec(t, db, "select a from T where b = 8;")
	if len(res.Rows) != 1 || res.Rows[0][0] != 7 {
		t.Fatalf("case-insensitive query failed: %v", res.Rows)
	}
}

func TestFormat(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	out := mustExec(t, db, "SELECT id, age FROM person WHERE id = 1").Format()
	if !strings.Contains(out, "id") || !strings.Contains(out, "30") || !strings.Contains(out, "(1 row(s))") {
		t.Fatalf("format = %q", out)
	}
	if out := mustExec(t, db, "UPDATE person SET age = 1 WHERE id = 1").Format(); !strings.Contains(out, "1 row(s) affected") {
		t.Fatalf("update format = %q", out)
	}
	if out := mustExec(t, db, "CREATE TABLE z (a)").Format(); !strings.Contains(out, "created table z") {
		t.Fatalf("create format = %q", out)
	}
}

// TestTable2QueriesParse: every Table 2 query shape of the paper is
// expressible.
func TestTable2QueriesParse(t *testing.T) {
	for _, src := range []string{
		"SELECT f3, f4 FROM tablea WHERE f10 > 5",
		"SELECT * FROM tableb WHERE f10 > 5",
		"SELECT SUM(f9) FROM tablea WHERE f10 > 5",
		"SELECT AVG(f1) FROM tableb WHERE f10 > 5",
		"SELECT tablea.f3, tableb.f4 FROM tablea JOIN tableb ON tablea.f9 = tableb.f9",
		"SELECT f3, f4 FROM tablea WHERE f1 > 5 AND f9 < 9",
		"UPDATE tableb SET f3 = 1, f4 = 2 WHERE f10 = 3",
		"SELECT SUM(f2_wide) FROM tablec",
		"SELECT f3, f6, f10 FROM tablea",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestDelete(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res := mustExec(t, db, "DELETE FROM person WHERE dept = 1")
	if res.Affected != 2 {
		t.Fatalf("deleted %d, want 2", res.Affected)
	}
	// Deleted rows vanish from scans and aggregates.
	if got := mustExec(t, db, "SELECT COUNT(*) FROM person WHERE id > 0").Rows[0][0]; got != 3 {
		t.Fatalf("count after delete = %d", got)
	}
	// Full-table delete clears the rest.
	res = mustExec(t, db, "DELETE FROM person")
	if res.Affected != 3 {
		t.Fatalf("full delete affected %d", res.Affected)
	}
	if got := len(mustExec(t, db, "SELECT * FROM person").Rows); got != 0 {
		t.Fatalf("%d rows after full delete", got)
	}
	// Double full-delete affects zero rows.
	if res := mustExec(t, db, "DELETE FROM person"); res.Affected != 0 {
		t.Fatalf("re-delete affected %d", res.Affected)
	}
}

func TestMinMax(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res := mustExec(t, db, "SELECT MIN(age), MAX(age) FROM person")
	if res.Rows[0][0] != 25 || res.Rows[0][1] != 60 {
		t.Fatalf("min/max = %v", res.Rows[0])
	}
	res = mustExec(t, db, "SELECT MIN(salary) FROM person WHERE dept = 2")
	if res.Rows[0][0] != 2500 {
		t.Fatalf("filtered min = %v", res.Rows[0])
	}
}

func TestGroupBy(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res := mustExec(t, db, "SELECT dept, SUM(salary) FROM person GROUP BY dept")
	want := [][]uint64{{1, 2800}, {2, 5500}, {3, 900}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("group by = %v, want %v", res.Rows, want)
	}
	res = mustExec(t, db, "SELECT dept, COUNT(*) FROM person WHERE age > 26 GROUP BY dept")
	if !reflect.DeepEqual(res.Rows, [][]uint64{{1, 2}, {2, 2}}) {
		t.Fatalf("filtered group count = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT dept, AVG(salary) FROM person GROUP BY dept")
	if res.Rows[1][1] != 2750 {
		t.Fatalf("group avg = %v", res.Rows)
	}
	// Malformed GROUP BY shapes are rejected.
	for _, bad := range []string{
		"SELECT SUM(salary) FROM person GROUP BY dept",
		"SELECT age, SUM(salary) FROM person GROUP BY dept",
		"SELECT dept, salary FROM person GROUP BY dept",
		"SELECT dept, MIN(salary) FROM person GROUP BY dept",
	} {
		if _, err := Exec(db, bad); err == nil {
			t.Errorf("%q: expected error", bad)
		}
	}
}

func TestDeletedRowsExcludedFromJoin(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	mustExec(t, db, "CREATE TABLE dept (did, budget) CAPACITY 16")
	mustExec(t, db, "INSERT INTO dept VALUES (1, 11), (2, 22), (3, 33)")
	mustExec(t, db, "DELETE FROM person WHERE dept = 2")
	res := mustExec(t, db, "SELECT person.id, dept.budget FROM person JOIN dept ON person.dept = dept.did")
	if len(res.Rows) != 3 {
		t.Fatalf("join after delete = %d rows, want 3", len(res.Rows))
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res := mustExec(t, db, "SELECT id, age FROM person ORDER BY age")
	if res.Rows[0][0] != 4 || res.Rows[4][0] != 5 {
		t.Fatalf("asc order = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT id FROM person ORDER BY salary DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0] != 5 || res.Rows[1][0] != 2 {
		t.Fatalf("desc limit = %v", res.Rows)
	}
	// ORDER BY a column not in the projection.
	res = mustExec(t, db, "SELECT id FROM person WHERE dept != 3 ORDER BY age ASC")
	if res.Rows[0][0] != 1 {
		t.Fatalf("order by unprojected column = %v", res.Rows)
	}
	// LIMIT without ORDER BY truncates storage order.
	if got := len(mustExec(t, db, "SELECT id FROM person LIMIT 3").Rows); got != 3 {
		t.Fatalf("limit = %d rows", got)
	}
}

func TestGroupByOrderLimit(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res := mustExec(t, db, "SELECT dept, COUNT(*) FROM person GROUP BY dept ORDER BY dept DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0] != 3 || res.Rows[1][0] != 2 {
		t.Fatalf("group order desc = %v", res.Rows)
	}
	if _, err := Exec(db, "SELECT dept, COUNT(*) FROM person GROUP BY dept ORDER BY salary"); err == nil {
		t.Fatal("ordering a grouped result by non-key accepted")
	}
}
