package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// Histogram accumulates int64 samples (picoseconds in this project) into
// logarithmic buckets: bucket i covers [2^i, 2^(i+1)) for i >= 1, and
// bucket 0 covers [0, 2) plus any stray negative samples (a sample below
// the documented range is clamped into the lowest bucket rather than
// misfiled or dropped). It is cheap enough to record every memory
// operation's latency.
type Histogram struct {
	mu      sync.Mutex
	buckets [64]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// Observe records one sample. Non-positive samples count into bucket 0
// (the [0,2) bucket); they still contribute to count, sum, min and max.
func (h *Histogram) Observe(v int64) {
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v)) - 1
	}
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an upper bound of the q-quantile (0 < q <= 1) at bucket
// resolution: the top of the bucket containing the q-th sample.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= target {
			if i == 63 {
				return h.max
			}
			upper := int64(1) << uint(i+1)
			if upper > h.max {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Cumulative returns the distribution as Prometheus-style cumulative
// buckets: bounds[i] is the inclusive upper bound of bucket i (2^(i+1)-1)
// and counts[i] the number of samples <= bounds[i]. Buckets above the
// highest non-empty one are omitted (the +Inf bucket is Count()).
func (h *Histogram) Cumulative() (bounds, counts []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	top := -1
	for i, n := range h.buckets {
		if n > 0 {
			top = i
		}
	}
	if top < 0 {
		return nil, nil
	}
	bounds = make([]int64, top+1)
	counts = make([]int64, top+1)
	var cum int64
	for i := 0; i <= top; i++ {
		cum += h.buckets[i]
		if i == 63 {
			bounds[i] = math.MaxInt64
		} else {
			bounds[i] = int64(1)<<uint(i+1) - 1
		}
		counts[i] = cum
	}
	return bounds, counts
}

// Buckets returns the non-empty buckets as (lowerBound, count) pairs in
// ascending order.
func (h *Histogram) Buckets() [][2]int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out [][2]int64
	for i, n := range h.buckets {
		if n > 0 {
			out = append(out, [2]int64{1 << uint(i), n})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.0f min=%d p50=%d p95=%d p99=%d max=%d",
		h.Count(), h.Mean(), h.Min(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.Max())
	return b.String()
}
