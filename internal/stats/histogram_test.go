package stats

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{10, 20, 30, 40} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 25 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

// TestQuantileBounds: the bucketed quantile is always >= the exact quantile
// and <= 2x the exact value (log-2 bucket resolution).
func TestQuantileBounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		var vals []int64
		for i := 0; i < 500; i++ {
			v := int64(rng.Intn(1_000_000) + 1)
			vals = append(vals, v)
			h.Observe(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.5, 0.9, 0.99} {
			exact := vals[int(q*float64(len(vals)-1))]
			got := h.Quantile(q)
			if got < exact/2 || (got > 2*exact && got > h.Max()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuantileEdges(t *testing.T) {
	h := NewHistogram()
	h.Observe(100)
	if h.Quantile(1) < 100 {
		t.Fatalf("p100 = %d", h.Quantile(1))
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Fatal("q>1 should clamp")
	}
	if h.Quantile(0) != 0 {
		t.Fatal("q=0 should be 0")
	}
	// Quantile never exceeds max.
	if h.Quantile(0.5) > h.Max() {
		t.Fatal("quantile above max")
	}
}

// TestNonPositiveSamples: zero and negative samples land in the [0,2)
// bucket — counted, summed, and visible in min/max — never misfiled into a
// positive bucket or dropped.
func TestNonPositiveSamples(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-5)
	if h.Count() != 2 {
		t.Fatal("non-positive samples dropped")
	}
	if h.Min() != -5 || h.Max() != 0 {
		t.Fatalf("min/max = %d/%d, want -5/0", h.Min(), h.Max())
	}
	if h.Sum() != -5 {
		t.Fatalf("sum = %d, want -5", h.Sum())
	}
	// Both samples sit in bucket 0, whose reported lower bound is 1 (the
	// bucket's positive floor); exactly one bucket is populated.
	if bks := h.Buckets(); len(bks) != 1 || bks[0][1] != 2 {
		t.Fatalf("buckets = %v, want one bucket holding both samples", bks)
	}
	// Quantiles stay within the lowest bucket's bound instead of jumping
	// to a positive power of two further up.
	if q := h.Quantile(0.99); q > 2 {
		t.Fatalf("p99 = %d, want <= 2", q)
	}

	// Mixing non-positive and positive samples keeps the ordering: the
	// non-positive ones fill the lowest bucket, so low quantiles reflect
	// them and high quantiles reflect the real values.
	h2 := NewHistogram()
	h2.Observe(-1)
	h2.Observe(0)
	h2.Observe(1000)
	if h2.Quantile(1) < 1000 {
		t.Fatalf("p100 = %d, want >= 1000", h2.Quantile(1))
	}
	if q := h2.Quantile(0.5); q > 2 {
		t.Fatalf("p50 = %d, want <= 2 (two of three samples are <= 0)", q)
	}
}

// TestObserveBucketBoundaries pins the power-of-two edges after the move
// to bits.Len64: 2^k is the first value of bucket k.
func TestObserveBucketBoundaries(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 2, 3, 4, 7, 8} {
		h.Observe(v)
	}
	want := [][2]int64{{1, 1}, {2, 2}, {4, 2}, {8, 1}}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBuckets(t *testing.T) {
	h := NewHistogram()
	h.Observe(1) // bucket [1,2)
	h.Observe(3) // bucket [2,4)
	h.Observe(3)
	bks := h.Buckets()
	if len(bks) != 2 || bks[0] != [2]int64{1, 1} || bks[1] != [2]int64{2, 2} {
		t.Fatalf("buckets = %v", bks)
	}
}

func TestSum(t *testing.T) {
	h := NewHistogram()
	if h.Sum() != 0 {
		t.Fatal("empty sum")
	}
	for _, v := range []int64{10, 20, 30} {
		h.Observe(v)
	}
	if h.Sum() != 60 {
		t.Fatalf("sum = %d, want 60", h.Sum())
	}
}

func TestCumulative(t *testing.T) {
	h := NewHistogram()
	if bounds, counts := h.Cumulative(); bounds != nil || counts != nil {
		t.Fatal("empty histogram must return nil cumulative buckets")
	}
	h.Observe(1) // bucket [1,2), bound 1
	h.Observe(3) // bucket [2,4), bound 3
	h.Observe(3)
	h.Observe(100) // bucket [64,128), bound 127
	bounds, counts := h.Cumulative()
	if len(bounds) != len(counts) {
		t.Fatalf("bounds/counts length mismatch: %d/%d", len(bounds), len(counts))
	}
	// Up to and including the highest non-empty bucket ([64,128) = index 6).
	if len(bounds) != 7 {
		t.Fatalf("buckets = %d, want 7", len(bounds))
	}
	if bounds[0] != 1 || counts[0] != 1 {
		t.Fatalf("bucket 0 = (%d, %d), want (1, 1)", bounds[0], counts[0])
	}
	if bounds[1] != 3 || counts[1] != 3 {
		t.Fatalf("bucket 1 = (%d, %d), want (3, 3)", bounds[1], counts[1])
	}
	if bounds[6] != 127 || counts[6] != 4 {
		t.Fatalf("top bucket = (%d, %d), want (127, 4)", bounds[6], counts[6])
	}
	// Counts are cumulative and non-decreasing; bounds strictly increase.
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] || bounds[i] <= bounds[i-1] {
			t.Fatalf("not cumulative at %d: %v %v", i, bounds, counts)
		}
	}
	if counts[len(counts)-1] != h.Count() {
		t.Fatal("last cumulative count must equal Count()")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 1; j <= 1000; j++ {
				h.Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.String() == "" {
		t.Fatal("empty string")
	}
}
