package stats

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{10, 20, 30, 40} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 25 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

// TestQuantileBounds: the bucketed quantile is always >= the exact quantile
// and <= 2x the exact value (log-2 bucket resolution).
func TestQuantileBounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		var vals []int64
		for i := 0; i < 500; i++ {
			v := int64(rng.Intn(1_000_000) + 1)
			vals = append(vals, v)
			h.Observe(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.5, 0.9, 0.99} {
			exact := vals[int(q*float64(len(vals)-1))]
			got := h.Quantile(q)
			if got < exact/2 || (got > 2*exact && got > h.Max()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuantileEdges(t *testing.T) {
	h := NewHistogram()
	h.Observe(100)
	if h.Quantile(1) < 100 {
		t.Fatalf("p100 = %d", h.Quantile(1))
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Fatal("q>1 should clamp")
	}
	if h.Quantile(0) != 0 {
		t.Fatal("q=0 should be 0")
	}
	// Quantile never exceeds max.
	if h.Quantile(0.5) > h.Max() {
		t.Fatal("quantile above max")
	}
}

func TestNonPositiveSamples(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-5)
	if h.Count() != 2 {
		t.Fatal("non-positive samples dropped")
	}
}

func TestBuckets(t *testing.T) {
	h := NewHistogram()
	h.Observe(1) // bucket [1,2)
	h.Observe(3) // bucket [2,4)
	h.Observe(3)
	bks := h.Buckets()
	if len(bks) != 2 || bks[0] != [2]int64{1, 1} || bks[1] != [2]int64{2, 2} {
		t.Fatalf("buckets = %v", bks)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 1; j <= 1000; j++ {
				h.Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.String() == "" {
		t.Fatal("empty string")
	}
}
