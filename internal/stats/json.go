package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// JSON wire forms: a Set marshals as its counter snapshot (a flat
// name→value object, so /stats payloads stay greppable), and a Histogram
// marshals its exact bucket contents so a decode rebuilds an equivalent
// histogram — quantiles, mean, min and max all survive the round trip.

// MarshalJSON renders the set as a flat {"name": value} object.
func (s *Set) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Snapshot())
}

// UnmarshalJSON replaces the set's counters with the decoded snapshot.
func (s *Set) UnmarshalJSON(b []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	if m == nil {
		m = make(map[string]int64)
	}
	s.mu.Lock()
	s.m = m
	s.mu.Unlock()
	return nil
}

// histogramJSON is the wire form of a Histogram. Buckets holds
// (bucketIndex, count) pairs for the non-empty buckets; bucket i covers
// [2^i, 2^(i+1)).
type histogramJSON struct {
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Min     int64      `json:"min"`
	Max     int64      `json:"max"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// MarshalJSON renders the histogram's full state.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := histogramJSON{Count: h.count, Sum: h.sum, Max: h.max}
	if h.count > 0 {
		out.Min = h.min
	}
	for i, n := range h.buckets {
		if n > 0 {
			out.Buckets = append(out.Buckets, [2]int64{int64(i), n})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON replaces the histogram's state with the decoded one.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var in histogramJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	var buckets [64]int64
	var total int64
	for _, p := range in.Buckets {
		i := p[0]
		if i < 0 || i >= 64 {
			return fmt.Errorf("stats: histogram bucket index %d out of range", i)
		}
		buckets[i] += p[1]
		total += p[1]
	}
	if total != in.Count {
		return fmt.Errorf("stats: histogram bucket counts sum to %d, want %d", total, in.Count)
	}
	h.mu.Lock()
	h.buckets = buckets
	h.count = in.Count
	h.sum = in.Sum
	h.max = in.Max
	if in.Count == 0 {
		h.min = math.MaxInt64
	} else {
		h.min = in.Min
	}
	h.mu.Unlock()
	return nil
}
