package stats

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestSetJSONRoundTrip(t *testing.T) {
	s := NewSet()
	s.Add(MemReads, 120)
	s.Add(BufferHits, 7)
	s.Add("server.queries", 42)

	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got := NewSet()
	if err := json.Unmarshal(b, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Snapshot(), s.Snapshot()) {
		t.Fatalf("round trip changed counters:\n got %v\nwant %v", got.Snapshot(), s.Snapshot())
	}
	// Decoding into a zero-value Set must also work.
	var zero Set
	if err := json.Unmarshal(b, &zero); err != nil {
		t.Fatal(err)
	}
	if zero.Get("server.queries") != 42 {
		t.Fatalf("zero-value decode lost counters: %v", zero.Snapshot())
	}
}

func TestSetJSONEmpty(t *testing.T) {
	b, err := json.Marshal(NewSet())
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "{}" {
		t.Fatalf("empty set marshals to %s, want {}", b)
	}
	s := NewSet()
	if err := json.Unmarshal([]byte("null"), s); err != nil {
		t.Fatal(err)
	}
	s.Inc("x") // must not panic on a nil map
	if s.Get("x") != 1 {
		t.Fatal("set unusable after decoding null")
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 3, 3, 900, 1 << 20, 1<<40 + 5, 7} {
		h.Observe(v)
	}

	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	got := NewHistogram()
	if err := json.Unmarshal(b, got); err != nil {
		t.Fatal(err)
	}

	if got.Count() != h.Count() || got.Min() != h.Min() || got.Max() != h.Max() {
		t.Fatalf("round trip changed summary: got n=%d min=%d max=%d, want n=%d min=%d max=%d",
			got.Count(), got.Min(), got.Max(), h.Count(), h.Min(), h.Max())
	}
	if got.Mean() != h.Mean() {
		t.Fatalf("mean changed: got %f, want %f", got.Mean(), h.Mean())
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got.Quantile(q) != h.Quantile(q) {
			t.Fatalf("q%.2f changed: got %d, want %d", q, got.Quantile(q), h.Quantile(q))
		}
	}
	if !reflect.DeepEqual(got.Buckets(), h.Buckets()) {
		t.Fatalf("buckets changed:\n got %v\nwant %v", got.Buckets(), h.Buckets())
	}
	// The decoded histogram keeps accumulating correctly.
	got.Observe(2)
	if got.Count() != h.Count()+1 {
		t.Fatal("decoded histogram not live")
	}
}

func TestHistogramJSONEmpty(t *testing.T) {
	b, err := json.Marshal(NewHistogram())
	if err != nil {
		t.Fatal(err)
	}
	got := NewHistogram()
	if err := json.Unmarshal(b, got); err != nil {
		t.Fatal(err)
	}
	if got.Count() != 0 || got.Min() != 0 || got.Max() != 0 {
		t.Fatalf("empty round trip: n=%d min=%d max=%d", got.Count(), got.Min(), got.Max())
	}
	got.Observe(9) // min tracking must still work after the round trip
	if got.Min() != 9 || got.Max() != 9 {
		t.Fatalf("post-decode observe broken: min=%d max=%d", got.Min(), got.Max())
	}
}

func TestHistogramJSONRejectsCorrupt(t *testing.T) {
	for _, bad := range []string{
		`{"count":2,"sum":3,"min":1,"max":2,"buckets":[[70,2]]}`, // index out of range
		`{"count":3,"sum":3,"min":1,"max":2,"buckets":[[1,2]]}`,  // count mismatch
	} {
		if err := json.Unmarshal([]byte(bad), NewHistogram()); err == nil {
			t.Errorf("decoded corrupt histogram %s", bad)
		}
	}
}
