// Package stats collects the counters the RC-NVM evaluation reports:
// memory accesses (LLC misses, Figure 19), row-/column-buffer hits and
// misses (Figure 20), cache synonym and coherence overhead (Figure 21), and
// general execution accounting.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Set is a named collection of integer counters. It is safe for concurrent
// use so that independent simulator components can share one Set.
type Set struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{m: make(map[string]int64)}
}

// Add increments counter name by delta.
func (s *Set) Add(name string, delta int64) {
	s.mu.Lock()
	s.m[name] += delta
	s.mu.Unlock()
}

// Inc increments counter name by one.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Get returns the current value of counter name (zero if never touched).
func (s *Set) Get(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name]
}

// Max raises counter name to v if v is larger than its current value.
func (s *Set) Max(name string, v int64) {
	s.mu.Lock()
	if v > s.m[name] {
		s.m[name] = v
	}
	s.mu.Unlock()
}

// Names returns all counter names in sorted order.
func (s *Set) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.m))
	for k := range s.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counters.
func (s *Set) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.m))
	for k, v := range s.m {
		out[k] = v
	}
	return out
}

// Reset zeroes all counters.
func (s *Set) Reset() {
	s.mu.Lock()
	s.m = make(map[string]int64)
	s.mu.Unlock()
}

// Ratio returns a/(a+b) as a float, or 0 when both are zero. It is the
// helper used for buffer miss rates and overhead ratios.
func Ratio(a, b int64) float64 {
	if a+b == 0 {
		return 0
	}
	return float64(a) / float64(a+b)
}

// String renders the set as "name=value" lines, sorted by name.
func (s *Set) String() string {
	var b strings.Builder
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%s=%d\n", k, snap[k])
	}
	return b.String()
}

// Canonical counter names used across the simulator. Components add to
// these; the experiment harness reads them.
const (
	// Device / controller level.
	MemReads          = "mem.reads"
	MemWrites         = "mem.writes"
	MemGathers        = "mem.gathers"
	MemWritebacks     = "mem.writebacks"
	BufferHits        = "mem.buffer_hits"
	BufferMisses      = "mem.buffer_misses"
	RowActivations    = "mem.row_activations"
	ColActivations    = "mem.col_activations"
	OrientSwitches    = "mem.orientation_switches"
	Refreshes         = "mem.refreshes"
	BufferFlushes     = "mem.buffer_flushes"
	QueueMaxOccupancy = "mem.queue_max_occupancy"
	SchedFRHits       = "mem.sched_fr_hits" // requests promoted by FR-FCFS
	SchedStarved      = "mem.sched_starvation_overrides"

	// Reliability: the (72,64) SECDED path of the memory controller.
	// Corrected/uncorrectable count codewords (8 per line read); retries
	// count controller re-reads after a detected error.
	ECCCorrected     = "ecc.corrected_words"
	ECCUncorrectable = "ecc.uncorrectable_words"
	ECCRetries       = "ecc.read_retries"

	// Cache level.
	L1Hits         = "cache.l1_hits"
	L2Hits         = "cache.l2_hits"
	L3Hits         = "cache.l3_hits"
	LLCMisses      = "cache.llc_misses"
	Evictions      = "cache.evictions"
	DirtyEvictions = "cache.dirty_evictions"
	MSHRMerges     = "cache.mshr_merges"
	PinnedLines    = "cache.pinned_lines"
	PinBypasses    = "cache.pin_bypasses"
	Prefetches     = "cache.prefetches"
	PrefetchHits   = "cache.prefetch_hits"

	// Synonym / coherence (Figure 21). OverheadPs accumulates every extra
	// picosecond spent on synonym copies/updates/clears and coherence
	// invalidations.
	CrossingDetected = "syn.crossings_detected"
	CrossingCopies   = "syn.crossing_copies"
	CrossingUpdates  = "syn.crossing_updates"
	CrossingClears   = "syn.crossing_clears"
	CoherenceInvals  = "coh.invalidations"
	CoherenceMsgs    = "coh.messages"
	OverheadPs       = "syn.overhead_ps"

	// Core level.
	OpsExecuted = "core.ops"
	ComputePs   = "core.compute_ps"
	StallPs     = "core.stall_ps"

	// Hybrid DRAM tier (internal/tier): row migrations between the DRAM
	// cache and the NVM device, and the accesses DRAM absorbed.
	TierDRAMHits   = "tier.dram_hits"
	TierPromotions = "tier.promotions"
	TierDemotions  = "tier.demotions"
	TierWritebacks = "tier.writebacks"
	TierColPatches = "tier.col_patches"
)
