package stats

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestAddGet(t *testing.T) {
	s := NewSet()
	if got := s.Get("x"); got != 0 {
		t.Fatalf("fresh counter = %d, want 0", got)
	}
	s.Add("x", 5)
	s.Inc("x")
	if got := s.Get("x"); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
}

func TestMax(t *testing.T) {
	s := NewSet()
	s.Max("q", 10)
	s.Max("q", 3)
	if got := s.Get("q"); got != 10 {
		t.Fatalf("max = %d, want 10", got)
	}
	s.Max("q", 12)
	if got := s.Get("q"); got != 12 {
		t.Fatalf("max = %d, want 12", got)
	}
}

func TestSnapshotIsolated(t *testing.T) {
	s := NewSet()
	s.Add("a", 1)
	snap := s.Snapshot()
	s.Add("a", 1)
	if snap["a"] != 1 {
		t.Fatalf("snapshot mutated: %d", snap["a"])
	}
}

func TestNamesSorted(t *testing.T) {
	s := NewSet()
	s.Inc("zeta")
	s.Inc("alpha")
	s.Inc("mid")
	names := s.Names()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("names = %v", names)
	}
}

func TestReset(t *testing.T) {
	s := NewSet()
	s.Inc("a")
	s.Reset()
	if s.Get("a") != 0 || len(s.Names()) != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(0, 0) != 0 {
		t.Error("Ratio(0,0) should be 0")
	}
	if got := Ratio(1, 3); got != 0.25 {
		t.Errorf("Ratio(1,3) = %v, want 0.25", got)
	}
	if got := Ratio(3, 0); got != 1 {
		t.Errorf("Ratio(3,0) = %v, want 1", got)
	}
}

func TestRatioBounds(t *testing.T) {
	prop := func(a, b uint16) bool {
		r := Ratio(int64(a), int64(b))
		return r >= 0 && r <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAdd(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Inc("n")
			}
		}()
	}
	wg.Wait()
	if got := s.Get("n"); got != 8000 {
		t.Fatalf("concurrent adds = %d, want 8000", got)
	}
}

// TestSnapshotConcurrent takes snapshots while writers are adding: every
// snapshot must be internally consistent (a single locked copy, never a
// torn read) and monotonic for a counter only ever incremented.
func TestSnapshotConcurrent(t *testing.T) {
	s := NewSet()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.Inc("a")
					s.Inc("b")
				}
			}
		}()
	}
	var lastA int64
	for i := 0; i < 200; i++ {
		snap := s.Snapshot()
		if snap["a"] < lastA {
			t.Fatalf("snapshot went backwards: %d < %d", snap["a"], lastA)
		}
		lastA = snap["a"]
	}
	close(stop)
	wg.Wait()
	final := s.Snapshot()
	if final["a"] != s.Get("a") || final["b"] != s.Get("b") {
		t.Fatal("final snapshot disagrees with Get")
	}
}

func TestString(t *testing.T) {
	s := NewSet()
	s.Add("b", 2)
	s.Add("a", 1)
	out := s.String()
	if !strings.HasPrefix(out, "a=1\n") || !strings.Contains(out, "b=2") {
		t.Fatalf("unexpected string output: %q", out)
	}
}
