// Package tier implements a small DRAM cache in front of the NVM device:
// the hybrid-memory design of Yoon et al. ("A Memory Controller with Row
// Buffer Locality Awareness for Hybrid Memory Systems") applied to the
// RC-NVM system. The unit of migration is one device row (the row buffer's
// content). Rows that repeatedly MISS the row buffer — the accesses that
// pay the NVM activation latency over and over — are promoted into DRAM;
// streaming rows with high buffer locality stay in NVM, where a buffer hit
// is already as fast as DRAM (Meza et al., "Evaluating Row Buffer Locality
// in Future Non-Volatile Main Memories", supplies the cost model: NVM
// array reads are the expensive part, buffer hits are not).
//
// The cache is driven synchronously by the memory controller on the
// single-threaded event engine, so every decision is a pure function of
// the access sequence: runs are deterministic, and parallel sweeps stay
// byte-identical to sequential ones. A nil *Cache is the disabled path —
// call sites guard with one pointer comparison and the simulated timing is
// byte-identical to a build without the tier.
//
// Migration state machine (per NVM row):
//
//	untracked --row-buffer miss--> tracked (decayed miss counter)
//	tracked   --K-th miss-------> in-flight (copy scheduled on the engine)
//	in-flight --MigratePs event--> resident (DRAM serves row accesses)
//	resident  --clock eviction / column conflict--> demoted
//	                              (dirty rows write back through memctrl)
//
// Column-orientation coherence: a column activation senses one word from
// every row of its subarray, so column traffic and DRAM-resident rows can
// diverge. A column READ forces dirty resident rows of the subarray back
// to NVM first (clean copies cannot diverge and stay resident). A column
// WRITE needs no demotion: the tier sits in the controller's data path,
// so the written words are applied to the intersecting DRAM copies as
// well ("patched"), keeping both sides current — rows stay resident, and
// column-heavy subarrays remain promotable (their rows suffer guaranteed
// orientation-switch misses, which makes DRAM placement more valuable
// there, not less).
package tier

import (
	"rcnvm/internal/addr"
	"rcnvm/internal/event"
	"rcnvm/internal/stats"
)

// Config sizes the DRAM tier and its migration policy. The zero value
// disables the tier entirely (sim builds no Cache; the device path is
// byte-identical to a build without the tier).
type Config struct {
	// Rows is the DRAM capacity in device rows (promotion granularity).
	// 0 disables the tier.
	Rows int
	// PromoteAfter is K: the number of row-buffer misses a row must
	// accumulate (under decay) before it is promoted. Default 2.
	PromoteAfter int
	// HitPs is the DRAM access latency of a tier hit, replacing the whole
	// NVM bank access (the controller's bus arbitration still applies on
	// top). Default 15_000 ps — DDR3-class access time.
	HitPs int64
	// MigratePs is the promotion copy latency: the row becomes
	// DRAM-resident this long after the triggering NVM activation has the
	// row in the buffer. Default 25_000 ps.
	MigratePs int64
	// DecayPs is the miss-counter decay interval: every elapsed interval
	// halves a row's accumulated miss count (counters are also capped at
	// missCap). <= 0 defaults to 10 ms of simulated time.
	DecayPs int64
}

// Enabled reports whether the configuration calls for a tier.
func (c Config) Enabled() bool { return c.Rows > 0 }

// Defaults for the policy knobs; see Config.
const (
	DefaultPromoteAfter = 2
	DefaultHitPs        = 15_000
	DefaultMigratePs    = 25_000
	// DefaultDecayPs is 10 ms: the RBLA-style reset quantum. Workload
	// phases (an OLAP scan pass, an OLTP transaction batch) span
	// milliseconds of simulated time, and a row's misses must survive
	// from one pass to the next to reach the promotion threshold.
	DefaultDecayPs = 10_000_000_000
)

func (c Config) withDefaults() Config {
	if c.PromoteAfter <= 0 {
		c.PromoteAfter = DefaultPromoteAfter
	}
	if c.HitPs <= 0 {
		c.HitPs = DefaultHitPs
	}
	if c.MigratePs <= 0 {
		c.MigratePs = DefaultMigratePs
	}
	if c.DecayPs <= 0 {
		c.DecayPs = DefaultDecayPs
	}
	return c
}

// missCap bounds one row's accumulated miss count; with decay it makes
// the counter a bounded recency-weighted miss estimate, not an
// all-history sum.
const missCap = 15

// trackedPerRow bounds the miss-counter table relative to the DRAM
// capacity: tracking far more rows than could ever be promoted is wasted
// state, and a bounded table keeps the tier's memory footprint
// proportional to its configured size.
const trackedPerRow = 8

// entry is one DRAM-resident (or promotion-in-flight) row.
type entry struct {
	key     uint64
	base    addr.Coord // column-0 coordinate of the row (write-back target)
	slot    int        // index into Cache.slots
	readyAt int64      // promotion completes at this engine time
	ready   bool       // resident (false: copy still in flight)
	dirty   bool
	ref     bool // clock reference bit
}

// missState is one tracked row's decayed miss counter.
type missState struct {
	count uint8
	epoch int64 // DecayPs interval the count was last normalized to
}

// Writeback is one demotion the memory controller must issue through the
// normal device write path (so NVM wear accounting and SECDED apply to
// the data once it is NVM-resident again).
type Writeback struct {
	Coord addr.Coord
	Dirty bool
}

// Cache is the DRAM tier. It is single-threaded, driven by the memory
// controllers of one device under the shared event engine.
type Cache struct {
	cfg  Config
	geom addr.Geometry
	eng  *event.Engine
	st   *stats.Set

	resident map[uint64]*entry
	slots    []*entry // fixed DRAM capacity; nil = free
	free     []int    // freed slot indexes (LIFO, deterministic)
	hand     int      // clock hand over slots

	misses map[uint64]missState

	// bySub indexes resident entries by subarray for column-orientation
	// coherence.
	bySub map[uint64]map[uint64]*entry

	// pending collects demotion write-backs for the controller to drain
	// AFTER it finishes issuing the current request — submitting from
	// inside the tier would re-enter the controller's scheduling loop
	// mid-issue.
	pending []Writeback
}

// New builds a tier for a device with the given geometry. The Cache
// shares the simulation's counter set and schedules promotion-completion
// events on eng.
func New(cfg Config, geom addr.Geometry, eng *event.Engine, st *stats.Set) *Cache {
	cfg = cfg.withDefaults()
	return &Cache{
		cfg:      cfg,
		geom:     geom,
		eng:      eng,
		st:       st,
		resident: make(map[uint64]*entry, cfg.Rows),
		slots:    make([]*entry, cfg.Rows),
		misses:   make(map[uint64]missState),
		bySub:    make(map[uint64]map[uint64]*entry),
	}
}

// Config returns the (defaulted) tier configuration.
func (t *Cache) Config() Config { return t.cfg }

// Resident returns the number of DRAM-resident or in-flight rows (tests
// and diagnostics).
func (t *Cache) Resident() int { return len(t.resident) }

// rowKey identifies one device row: the bank, the subarray within it,
// and the row index within the subarray.
func (t *Cache) rowKey(c addr.Coord) uint64 {
	bank := uint64(t.geom.BankID(c))
	return ((bank<<uint(t.geom.SubarrayBits))|uint64(c.Subarray))<<uint(t.geom.RowBits) | uint64(c.Row)
}

// subKey identifies one (bank, subarray) pair.
func (t *Cache) subKey(c addr.Coord) uint64 {
	return uint64(t.geom.BankID(c))<<uint(t.geom.SubarrayBits) | uint64(c.Subarray)
}

// WouldServe reports, side-effect-free, whether a request would be served
// by the DRAM tier at time now. The controller's scheduler uses it: a
// tier-resident request is issuable even when its NVM bank is busy, and
// ranks with buffer hits under FR-FCFS.
func (t *Cache) WouldServe(now int64, c addr.Coord, o addr.Orientation) bool {
	if o != addr.Row {
		return false
	}
	e, ok := t.resident[t.rowKey(c)]
	return ok && e.ready && now >= e.readyAt
}

// Serve attempts to serve one request from DRAM. It returns true when the
// row is resident (the controller charges HitPs instead of the NVM bank
// access); writes mark the row dirty in DRAM and never touch NVM until
// demotion. Column-orientation requests always return false, but apply
// the coherence policy first: a column read queues write-backs for dirty
// resident rows of the subarray (which stay resident, now clean), a
// column write is patched into the intersecting DRAM copies, which stay
// resident. The controller must drain the queued write-backs after
// finishing the current issue.
func (t *Cache) Serve(now int64, c addr.Coord, o addr.Orientation, write bool) bool {
	if o == addr.Column {
		t.onColumnAccess(c, write)
		return false
	}
	e, ok := t.resident[t.rowKey(c)]
	if !ok || !e.ready || now < e.readyAt {
		return false
	}
	e.ref = true
	if write {
		e.dirty = true
	}
	t.st.Inc(stats.TierDRAMHits)
	return true
}

// onColumnAccess applies the column-coherence policy.
func (t *Cache) onColumnAccess(c addr.Coord, write bool) {
	sub := t.bySub[t.subKey(c)]
	if len(sub) == 0 {
		return
	}
	if write {
		// Column write: NVM receives the new words through the device
		// path being issued right now, and the tier — sitting in the
		// controller's data path — applies the same words to the
		// intersecting DRAM copies. Both sides stay current; nothing is
		// demoted. (A timing simulator carries no data, so the patch is
		// the accounting of that dual update.)
		t.st.Inc(stats.TierColPatches)
		return
	}
	// Column read: NVM still holds every row's data; only rows dirty in
	// DRAM have diverged and must be written back first. They stay
	// resident, clean.
	for _, key := range sortedKeys(sub) {
		e := sub[key]
		if e.dirty {
			e.dirty = false
			t.pending = append(t.pending, Writeback{Coord: e.base, Dirty: true})
			t.st.Inc(stats.TierWritebacks)
		}
	}
}

// sortedKeys returns the map's keys in ascending order: map iteration
// order is randomized in Go, and the demotion order decides the write-back
// queue order, which must be deterministic.
func sortedKeys(m map[uint64]*entry) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: subarray resident sets are small.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// OnNVMAccess observes one access the NVM device actually served and
// drives the promotion policy: row-orientation demand activations (buffer
// misses) accumulate the row's decayed miss counter, and the K-th miss
// promotes the row. readyAt is the device access's bank-ready time; the
// row becomes DRAM-resident MigratePs later (the copy proceeds from the
// open row buffer after the access that triggered it).
func (t *Cache) OnNVMAccess(now int64, c addr.Coord, o addr.Orientation, bufferHit, writeback bool, readyAt int64) {
	if o != addr.Row || bufferHit || writeback {
		return
	}
	key := t.rowKey(c)
	if _, ok := t.resident[key]; ok {
		// In-flight promotion (or a resident row the scheduler raced past
		// its readyAt): NVM still serving; no further accounting.
		return
	}
	epoch := now / t.cfg.DecayPs
	ms, tracked := t.misses[key]
	if !tracked && len(t.misses) >= trackedPerRow*t.cfg.Rows {
		t.sweepTracker(epoch)
		if len(t.misses) >= trackedPerRow*t.cfg.Rows {
			return // table still full of live counters: don't track more
		}
	}
	if d := epoch - ms.epoch; d > 0 {
		if d > 4 {
			ms.count = 0
		} else {
			ms.count >>= uint(d)
		}
	}
	ms.epoch = epoch
	if ms.count < missCap {
		ms.count++
	}
	if int(ms.count) < t.cfg.PromoteAfter {
		t.misses[key] = ms
		return
	}
	delete(t.misses, key)
	t.promote(key, c, readyAt)
}

// sweepTracker drops tracked rows whose counters have decayed to zero.
func (t *Cache) sweepTracker(epoch int64) {
	for k, ms := range t.misses {
		d := epoch - ms.epoch
		if d > 4 || (d > 0 && ms.count>>uint(d) == 0) {
			delete(t.misses, k)
		}
	}
}

// promote installs the row as in-flight and schedules the residency event.
func (t *Cache) promote(key uint64, c addr.Coord, readyAt int64) {
	slot, ok := t.takeSlot()
	if !ok {
		return // every slot held by an in-flight promotion: skip
	}
	base := c
	base.Column = 0
	e := &entry{key: key, base: base, slot: slot, readyAt: readyAt + t.cfg.MigratePs}
	t.slots[slot] = e
	t.resident[key] = e
	sk := t.subKey(c)
	sub := t.bySub[sk]
	if sub == nil {
		sub = make(map[uint64]*entry)
		t.bySub[sk] = sub
	}
	sub[key] = e
	t.st.Inc(stats.TierPromotions)
	t.eng.AtCall(e.readyAt, promoteDone, t, int64(key))
}

// promoteDone is the static promotion-completion callback: the copy from
// the NVM row buffer into DRAM has finished and the row starts serving.
// A row demoted while its copy was in flight is simply gone from the
// resident map (or replaced by a later promotion with a different
// readyAt) — the stale event is ignored.
func promoteDone(ctx any, key, now int64) {
	t := ctx.(*Cache)
	if e, ok := t.resident[uint64(key)]; ok && !e.ready && e.readyAt == now {
		e.ready = true
	}
}

// takeSlot returns a free DRAM slot, evicting a victim with the clock
// policy when full. ok=false means every slot holds an in-flight
// promotion (nothing evictable).
func (t *Cache) takeSlot() (int, bool) {
	if n := len(t.free); n > 0 {
		s := t.free[n-1]
		t.free = t.free[:n-1]
		return s, true
	}
	if t.hand >= len(t.slots) {
		t.hand = 0
	}
	// Clock: clear reference bits until an unreferenced resident row
	// turns up. Two full sweeps guarantee termination even if every row
	// was referenced; in-flight promotions are skipped (their slot cannot
	// be reclaimed mid-copy).
	for scanned := 0; scanned < 2*len(t.slots); scanned++ {
		e := t.slots[t.hand]
		if e == nil {
			s := t.hand
			t.hand = (t.hand + 1) % len(t.slots)
			return s, true
		}
		if e.ready && !e.ref {
			s := e.slot
			t.demote(e)
			t.hand = (t.hand + 1) % len(t.slots)
			return s, true
		}
		if e.ready {
			e.ref = false
		}
		t.hand = (t.hand + 1) % len(t.slots)
	}
	return 0, false
}

// demote removes a row from DRAM, queueing a write-back through the
// normal device path when it is dirty.
func (t *Cache) demote(e *entry) {
	delete(t.resident, e.key)
	t.slots[e.slot] = nil
	t.free = append(t.free, e.slot)
	sk := t.subKey(e.base)
	if sub := t.bySub[sk]; sub != nil {
		delete(sub, e.key)
		if len(sub) == 0 {
			delete(t.bySub, sk)
		}
	}
	t.st.Inc(stats.TierDemotions)
	if e.dirty {
		t.pending = append(t.pending, Writeback{Coord: e.base, Dirty: true})
		t.st.Inc(stats.TierWritebacks)
	}
}

// QueuedWritebacks hands the accumulated demotion write-backs to the
// caller and clears the queue. The memory controller calls it after every
// issue that touched the tier and submits each as a normal write-back
// request, so NVM wear accounting and the SECDED path see the data again.
func (t *Cache) QueuedWritebacks(buf []Writeback) []Writeback {
	if len(t.pending) == 0 {
		return buf[:0]
	}
	buf = append(buf[:0], t.pending...)
	t.pending = t.pending[:0]
	return buf
}

// PopWriteback removes and returns the oldest queued demotion write-back.
// The controller drains one at a time: submitting a write-back can
// re-enter the scheduler, whose issues may queue further write-backs, and
// popping keeps the drain loop correct (and FIFO-deterministic) under
// that reentrancy where a bulk snapshot would not be.
func (t *Cache) PopWriteback() (Writeback, bool) {
	if len(t.pending) == 0 {
		return Writeback{}, false
	}
	wb := t.pending[0]
	n := copy(t.pending, t.pending[1:])
	t.pending = t.pending[:n]
	return wb, true
}
