package tier

import (
	"testing"

	"rcnvm/internal/addr"
	"rcnvm/internal/event"
	"rcnvm/internal/stats"
)

// testGeom is a tiny dual-addressable geometry: 1 channel, 1 rank, 2 banks,
// 2 subarrays, 16 rows x 16 columns.
func testGeom() addr.Geometry {
	return addr.Geometry{
		ChannelBits: 0, RankBits: 0, BankBits: 1,
		SubarrayBits: 1, RowBits: 4, ColumnBits: 4,
		DualAddress: true,
	}
}

func newTest(t *testing.T, cfg Config) (*Cache, *event.Engine, *stats.Set) {
	t.Helper()
	eng := event.New()
	st := stats.NewSet()
	return New(cfg, testGeom(), eng, st), eng, st
}

func coord(bank, sub, row uint32) addr.Coord {
	return addr.Coord{Bank: bank, Subarray: sub, Row: row}
}

// missAt reports a row-orientation buffer miss at time now with the bank
// ready at now+1000.
func missAt(c *Cache, now int64, co addr.Coord) {
	c.OnNVMAccess(now, co, addr.Row, false, false, now+1000)
}

func TestPromotionAfterKMisses(t *testing.T) {
	c, eng, st := newTest(t, Config{Rows: 4, PromoteAfter: 2})
	co := coord(0, 0, 3)

	missAt(c, 0, co)
	if st.Get(stats.TierPromotions) != 0 {
		t.Fatalf("promoted after 1 miss, want K=2")
	}
	missAt(c, 100, co)
	if got := st.Get(stats.TierPromotions); got != 1 {
		t.Fatalf("promotions after 2 misses = %d, want 1", got)
	}
	// Copy is in flight until readyAt fires: not servable yet.
	if c.WouldServe(200, co, addr.Row) {
		t.Fatalf("WouldServe true while promotion in flight")
	}
	eng.Run()
	now := eng.Now()
	if want := int64(100+1000) + c.Config().MigratePs; now != want {
		t.Fatalf("promotion completed at %d, want %d", now, want)
	}
	if !c.WouldServe(now, co, addr.Row) {
		t.Fatalf("WouldServe false after promotion completed")
	}
	if !c.Serve(now, co, addr.Row, false) {
		t.Fatalf("Serve false after promotion completed")
	}
	if got := st.Get(stats.TierDRAMHits); got != 1 {
		t.Fatalf("dram_hits = %d, want 1", got)
	}
	// Column orientation is never tier-served.
	if c.WouldServe(now, co, addr.Column) {
		t.Fatalf("WouldServe true for column orientation")
	}
}

func TestBufferHitsAndWritebacksDoNotPromote(t *testing.T) {
	c, _, st := newTest(t, Config{Rows: 4, PromoteAfter: 1})
	co := coord(0, 0, 5)
	c.OnNVMAccess(0, co, addr.Row, true, false, 1000)  // buffer hit
	c.OnNVMAccess(10, co, addr.Row, false, true, 1000) // writeback miss
	c.OnNVMAccess(20, co, addr.Column, false, false, 1000)
	if got := st.Get(stats.TierPromotions); got != 0 {
		t.Fatalf("promotions = %d, want 0", got)
	}
}

func TestMissCounterDecay(t *testing.T) {
	c, _, st := newTest(t, Config{Rows: 4, PromoteAfter: 2, DecayPs: 1000})
	co := coord(0, 0, 7)
	// Two misses more than one decay interval apart: the first has decayed
	// to zero by the second, so no promotion.
	missAt(c, 0, co)
	missAt(c, 5000, co)
	if got := st.Get(stats.TierPromotions); got != 0 {
		t.Fatalf("promotions = %d, want 0 (counter should decay)", got)
	}
	// A third miss in the same interval as the second reaches K=2.
	missAt(c, 5100, co)
	if got := st.Get(stats.TierPromotions); got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}
}

// promoteRow drives a row to residency.
func promoteRow(t *testing.T, c *Cache, eng *event.Engine, now int64, co addr.Coord) {
	t.Helper()
	k := c.Config().PromoteAfter
	for i := 0; i < k; i++ {
		missAt(c, now+int64(i), co)
	}
	eng.Run()
	if !c.WouldServe(eng.Now(), co, addr.Row) {
		t.Fatalf("row %v not resident after %d misses", co, k)
	}
}

func TestClockEvictionWritesBackDirtyVictim(t *testing.T) {
	c, eng, st := newTest(t, Config{Rows: 2, PromoteAfter: 1})
	a, b, d := coord(0, 0, 1), coord(0, 0, 2), coord(0, 0, 3)

	promoteRow(t, c, eng, 0, a)
	promoteRow(t, c, eng, eng.Now()+1, b)
	now := eng.Now()

	// Dirty a, then reference b so the clock picks a (ref cleared first
	// sweep, evicted second).
	if !c.Serve(now, a, addr.Row, true) {
		t.Fatalf("Serve(a, write) = false")
	}
	if !c.Serve(now, b, addr.Row, false) {
		t.Fatalf("Serve(b) = false")
	}
	// Age the reference bits: the clock clears them on its first sweep.
	promoteRow(t, c, eng, now+1, d)
	if got := st.Get(stats.TierDemotions); got != 1 {
		t.Fatalf("demotions = %d, want 1", got)
	}
	wbs := c.QueuedWritebacks(nil)
	if len(wbs) != 1 {
		t.Fatalf("queued writebacks = %d, want 1", len(wbs))
	}
	want := a
	want.Column = 0
	if wbs[0].Coord != want {
		t.Fatalf("writeback coord = %+v, want %+v", wbs[0].Coord, want)
	}
	if got := st.Get(stats.TierWritebacks); got != 1 {
		t.Fatalf("writebacks = %d, want 1", got)
	}
	// Queue is drained.
	if got := len(c.QueuedWritebacks(wbs)); got != 0 {
		t.Fatalf("second drain returned %d writebacks, want 0", got)
	}
	if c.Resident() != 2 {
		t.Fatalf("resident = %d, want 2", c.Resident())
	}
}

func TestColumnReadWritesBackDirtyButKeepsResident(t *testing.T) {
	c, eng, st := newTest(t, Config{Rows: 4, PromoteAfter: 1})
	a, b := coord(0, 1, 1), coord(0, 1, 2)
	promoteRow(t, c, eng, 0, a)
	promoteRow(t, c, eng, eng.Now()+1, b)
	now := eng.Now()
	c.Serve(now, a, addr.Row, true) // dirty a only

	colCo := addr.Coord{Bank: 0, Subarray: 1, Column: 9}
	if c.Serve(now+1, colCo, addr.Column, false) {
		t.Fatalf("column access must not be tier-served")
	}
	wbs := c.QueuedWritebacks(nil)
	if len(wbs) != 1 {
		t.Fatalf("column read queued %d writebacks, want 1 (dirty row only)", len(wbs))
	}
	if c.Resident() != 2 {
		t.Fatalf("resident = %d after column read, want 2 (rows stay, now clean)", c.Resident())
	}
	if got := st.Get(stats.TierDemotions); got != 0 {
		t.Fatalf("demotions = %d after column read, want 0", got)
	}
	// The row is clean now: a second column read queues nothing.
	c.Serve(now+2, colCo, addr.Column, false)
	if got := len(c.QueuedWritebacks(wbs)); got != 0 {
		t.Fatalf("second column read queued %d writebacks, want 0", got)
	}
}

func TestColumnWritePatchesResidentRows(t *testing.T) {
	c, eng, st := newTest(t, Config{Rows: 4, PromoteAfter: 1})
	a, b := coord(0, 1, 1), coord(0, 1, 2)
	promoteRow(t, c, eng, 0, a)
	promoteRow(t, c, eng, eng.Now()+1, b)
	now := eng.Now()
	c.Serve(now, a, addr.Row, true) // dirty a

	colCo := addr.Coord{Bank: 0, Subarray: 1, Column: 3}
	c.Serve(now+1, colCo, addr.Column, true)
	// A column write is patched into the resident copies: nothing is
	// demoted, nothing written back, and the rows keep serving.
	if c.Resident() != 2 {
		t.Fatalf("resident = %d after column write, want 2 (patched, not demoted)", c.Resident())
	}
	if !c.WouldServe(now+2, a, addr.Row) || !c.WouldServe(now+2, b, addr.Row) {
		t.Fatalf("resident rows stopped serving after a column-write patch")
	}
	if got := st.Get(stats.TierDemotions); got != 0 {
		t.Fatalf("demotions = %d after column write, want 0", got)
	}
	if got := st.Get(stats.TierColPatches); got != 1 {
		t.Fatalf("col_patches = %d, want 1", got)
	}
	if got := len(c.QueuedWritebacks(nil)); got != 0 {
		t.Fatalf("column write queued %d writebacks, want 0", got)
	}
	// A column write over a subarray with no resident rows records nothing.
	c.Serve(now+3, addr.Coord{Bank: 1, Subarray: 0, Column: 3}, addr.Column, true)
	if got := st.Get(stats.TierColPatches); got != 1 {
		t.Fatalf("col_patches = %d after empty-subarray write, want 1", got)
	}
}

func TestTrackerBounded(t *testing.T) {
	c, _, _ := newTest(t, Config{Rows: 2, PromoteAfter: 8, DecayPs: 1000})
	// Touch many distinct rows in one interval: the tracker must not grow
	// past its bound.
	for row := uint32(0); row < 16; row++ {
		for sub := uint32(0); sub < 2; sub++ {
			for bank := uint32(0); bank < 2; bank++ {
				missAt(c, 10, coord(bank, sub, row))
			}
		}
	}
	if max := trackedPerRow * 2; len(c.misses) > max {
		t.Fatalf("tracker holds %d rows, bound is %d", len(c.misses), max)
	}
	// After the counters decay, new rows can be tracked again.
	missAt(c, 10+5*1000, coord(0, 0, 1))
	if len(c.misses) == 0 {
		t.Fatalf("tracker empty after sweep; new row should be tracked")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Rows: 8}.withDefaults()
	if cfg.PromoteAfter != DefaultPromoteAfter || cfg.HitPs != DefaultHitPs ||
		cfg.MigratePs != DefaultMigratePs || cfg.DecayPs != DefaultDecayPs {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if (Config{}).Enabled() {
		t.Fatalf("zero config reports enabled")
	}
	if !(Config{Rows: 1}).Enabled() {
		t.Fatalf("Rows=1 config reports disabled")
	}
}

func TestServeWriteMarksDirty(t *testing.T) {
	c, eng, _ := newTest(t, Config{Rows: 2, PromoteAfter: 1})
	a := coord(0, 0, 1)
	promoteRow(t, c, eng, 0, a)
	now := eng.Now()
	// Clean row: a column read over it queues nothing.
	colCo := addr.Coord{Bank: 0, Subarray: 0, Column: 1}
	c.Serve(now, colCo, addr.Column, false)
	if got := len(c.QueuedWritebacks(nil)); got != 0 {
		t.Fatalf("clean row queued %d writebacks", got)
	}
	c.Serve(now+1, a, addr.Row, true)
	c.Serve(now+2, colCo, addr.Column, false)
	if got := len(c.QueuedWritebacks(nil)); got != 1 {
		t.Fatalf("dirty row queued %d writebacks, want 1", got)
	}
}
