package trace

import (
	"encoding/gob"
	"fmt"
	"io"

	"rcnvm/internal/addr"
)

// Serialization lets traces be captured once (from the engine or a
// planner) and replayed later: `rcnvm-sim -replay file` runs a saved
// multi-core trace through any simulated system.

// fileHeader guards the on-disk format.
type fileHeader struct {
	Magic   string
	Version int
	Cores   int
}

const (
	traceMagic   = "rcnvm-trace"
	traceVersion = 1
)

// SaveStreams writes per-core streams to w.
func SaveStreams(w io.Writer, streams []Stream) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(fileHeader{Magic: traceMagic, Version: traceVersion, Cores: len(streams)}); err != nil {
		return fmt.Errorf("trace: save header: %w", err)
	}
	for i, s := range streams {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("trace: save stream %d: %w", i, err)
		}
	}
	return nil
}

// LoadStreams reads per-core streams from r.
func LoadStreams(r io.Reader) ([]Stream, error) {
	dec := gob.NewDecoder(r)
	var h fileHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: load header: %w", err)
	}
	if h.Magic != traceMagic {
		return nil, fmt.Errorf("trace: not a trace file")
	}
	if h.Version != traceVersion {
		return nil, fmt.Errorf("trace: version %d, want %d", h.Version, traceVersion)
	}
	if h.Cores < 0 || h.Cores > 1024 {
		return nil, fmt.Errorf("trace: implausible core count %d", h.Cores)
	}
	streams := make([]Stream, h.Cores)
	for i := range streams {
		if err := dec.Decode(&streams[i]); err != nil {
			return nil, fmt.Errorf("trace: load stream %d: %w", i, err)
		}
	}
	return streams, nil
}

// Validate checks that every memory op's coordinate lies within the
// geometry and that column ops are only present when the geometry is
// dual-addressable. Replaying a trace captured for one geometry on an
// incompatible system fails here instead of deep in the simulator.
func Validate(streams []Stream, geom addr.Geometry) error {
	for ci, s := range streams {
		for oi, op := range s {
			if !op.Kind.IsMemory() {
				continue
			}
			c := op.Coord
			if int(c.Channel) >= geom.Channels() || int(c.Rank) >= geom.Ranks() ||
				int(c.Bank) >= geom.Banks() || int(c.Subarray) >= geom.Subarrays() ||
				int(c.Row) >= geom.Rows() || int(c.Column) >= geom.Columns() {
				return fmt.Errorf("trace: core %d op %d coordinate %+v out of geometry bounds", ci, oi, c)
			}
			if op.Kind.Orientation() == addr.Column && !geom.DualAddress {
				return fmt.Errorf("trace: core %d op %d is column-oriented but the geometry is row-only", ci, oi)
			}
		}
	}
	return nil
}
