package trace

import (
	"bytes"
	"reflect"
	"testing"

	"rcnvm/internal/addr"
)

func sampleStreams() []Stream {
	return []Stream{
		{LoadOp(addr.Coord{Row: 1, Column: 2}), ComputeOp(5), CLoadOp(addr.Coord{Row: 3})},
		{GatherOp(addr.Coord{Row: 9}, 42), BarrierOp(), UnpinAllOp()},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleStreams()
	if err := SaveStreams(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadStreams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: %v vs %v", in, out)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadStreams(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveStreams(&buf, nil); err != nil {
		t.Fatal(err)
	}
	// Corrupt the magic string bytes.
	b := buf.Bytes()
	idx := bytes.Index(b, []byte("rcnvm-trace"))
	if idx < 0 {
		t.Skip("magic not found in encoding")
	}
	b[idx] = 'x'
	if _, err := LoadStreams(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted magic accepted")
	}
}

func TestValidate(t *testing.T) {
	dual := addr.Geometry{ChannelBits: 1, RankBits: 2, BankBits: 3, SubarrayBits: 3,
		RowBits: 10, ColumnBits: 10, DualAddress: true}
	rowOnly := addr.Geometry{ChannelBits: 1, RankBits: 1, BankBits: 3,
		RowBits: 16, ColumnBits: 8}

	ok := []Stream{{LoadOp(addr.Coord{Row: 100, Column: 100}), CLoadOp(addr.Coord{Row: 5})}}
	if err := Validate(ok, dual); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	// Column op on a row-only geometry.
	if err := Validate(ok, rowOnly); err == nil {
		t.Fatal("column op on row-only geometry accepted")
	}
	// Out-of-bounds coordinate.
	bad := []Stream{{LoadOp(addr.Coord{Row: 5000})}}
	if err := Validate(bad, dual); err == nil {
		t.Fatal("out-of-bounds coordinate accepted")
	}
	// Non-memory ops are exempt.
	if err := Validate([]Stream{{ComputeOp(3), BarrierOp()}}, rowOnly); err != nil {
		t.Fatalf("bookkeeping ops rejected: %v", err)
	}
}
