// Package trace defines the instruction-level operations the simulated
// cores execute. A trace is the lowered form of a database query plan: the
// per-architecture planners in internal/query translate logical plans into
// per-core op streams of ordinary loads/stores, the RC-NVM cload/cstore ISA
// extension (§4.2.3), GS-DRAM gathers, and bookkeeping ops (compute delays,
// barriers, group-cache unpinning).
package trace

import (
	"fmt"

	"rcnvm/internal/addr"
)

// Kind enumerates trace operations.
type Kind uint8

const (
	// Load is a conventional row-oriented 8-byte load.
	Load Kind = iota
	// Store is a conventional row-oriented 8-byte store.
	Store
	// CLoad is the column-oriented load of the RC-NVM ISA extension.
	CLoad
	// CStore is the column-oriented store of the RC-NVM ISA extension.
	CStore
	// Gather is a GS-DRAM gathered load: one access assembling 8 strided
	// words from an open DRAM row.
	Gather
	// Compute models CPU work (filtering, aggregation, hashing) between
	// memory operations.
	Compute
	// Barrier drains all outstanding memory operations of the core before
	// proceeding (phase boundaries, dependent phases).
	Barrier
	// UnpinAll releases every group-caching pin in the cache hierarchy.
	UnpinAll
)

func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case CLoad:
		return "cload"
	case CStore:
		return "cstore"
	case Gather:
		return "gather"
	case Compute:
		return "compute"
	case Barrier:
		return "barrier"
	case UnpinAll:
		return "unpinall"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsMemory reports whether the op occupies a core miss slot.
func (k Kind) IsMemory() bool {
	switch k {
	case Load, Store, CLoad, CStore, Gather:
		return true
	}
	return false
}

// Orientation returns the address orientation of a memory op.
func (k Kind) Orientation() addr.Orientation {
	if k == CLoad || k == CStore {
		return addr.Column
	}
	return addr.Row
}

// IsWrite reports whether the op modifies memory.
func (k Kind) IsWrite() bool { return k == Store || k == CStore }

// Op is one trace operation.
type Op struct {
	Kind Kind
	// Coord is the 8-byte word touched by memory ops; for Gather it is the
	// pattern's anchor word (the first gathered element).
	Coord addr.Coord
	// GatherID identifies the gathered pattern for cache purposes.
	GatherID uint32
	// Pin requests the touched line be pinned (group-caching prefetch).
	Pin bool
	// Ordered marks a strictly-ordered access (tuple-at-a-time operator
	// chains): the core allows only minimal overlap with prior memory
	// operations.
	Ordered bool
	// Cycles is the duration of Compute ops, in CPU cycles.
	Cycles int64
}

// Convenience constructors keep workload builders readable.

// LoadOp returns a row-oriented load of the word at c.
func LoadOp(c addr.Coord) Op { return Op{Kind: Load, Coord: c} }

// StoreOp returns a row-oriented store to the word at c.
func StoreOp(c addr.Coord) Op { return Op{Kind: Store, Coord: c} }

// CLoadOp returns a column-oriented load of the word at c.
func CLoadOp(c addr.Coord) Op { return Op{Kind: CLoad, Coord: c} }

// CStoreOp returns a column-oriented store to the word at c.
func CStoreOp(c addr.Coord) Op { return Op{Kind: CStore, Coord: c} }

// PinnedCLoadOp returns a column-oriented, pinning prefetch load (group
// caching).
func PinnedCLoadOp(c addr.Coord) Op { return Op{Kind: CLoad, Coord: c, Pin: true} }

// GatherOp returns a GS-DRAM gathered load anchored at c with pattern id.
func GatherOp(c addr.Coord, id uint32) Op { return Op{Kind: Gather, Coord: c, GatherID: id} }

// ComputeOp returns n CPU cycles of work.
func ComputeOp(n int64) Op { return Op{Kind: Compute, Cycles: n} }

// BarrierOp returns a full memory barrier.
func BarrierOp() Op { return Op{Kind: Barrier} }

// UnpinAllOp returns a group-caching release.
func UnpinAllOp() Op { return Op{Kind: UnpinAll} }

// Stream is a per-core op sequence.
type Stream []Op

// MemOps counts the memory operations in the stream.
func (s Stream) MemOps() int {
	n := 0
	for _, op := range s {
		if op.Kind.IsMemory() {
			n++
		}
	}
	return n
}

// ComputeTotal sums the compute cycles in the stream.
func (s Stream) ComputeTotal() int64 {
	var n int64
	for _, op := range s {
		if op.Kind == Compute {
			n += op.Cycles
		}
	}
	return n
}

// Split partitions items [0,n) into `parts` contiguous ranges as evenly as
// possible, returning the [start,end) bounds. Workloads use it to
// distribute tuples across cores.
func Split(n, parts int) [][2]int {
	if parts <= 0 {
		parts = 1
	}
	out := make([][2]int, parts)
	base := n / parts
	rem := n % parts
	start := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out[i] = [2]int{start, start + size}
		start += size
	}
	return out
}
