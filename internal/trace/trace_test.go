package trace

import (
	"testing"
	"testing/quick"

	"rcnvm/internal/addr"
)

func TestKindProperties(t *testing.T) {
	memKinds := []Kind{Load, Store, CLoad, CStore, Gather}
	for _, k := range memKinds {
		if !k.IsMemory() {
			t.Errorf("%v should be a memory op", k)
		}
	}
	for _, k := range []Kind{Compute, Barrier, UnpinAll} {
		if k.IsMemory() {
			t.Errorf("%v should not be a memory op", k)
		}
	}
	if Load.Orientation() != addr.Row || Store.Orientation() != addr.Row {
		t.Error("load/store must be row-oriented")
	}
	if CLoad.Orientation() != addr.Column || CStore.Orientation() != addr.Column {
		t.Error("cload/cstore must be column-oriented")
	}
	if !Store.IsWrite() || !CStore.IsWrite() || Load.IsWrite() || CLoad.IsWrite() || Gather.IsWrite() {
		t.Error("IsWrite flags wrong")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Load: "load", Store: "store", CLoad: "cload", CStore: "cstore",
		Gather: "gather", Compute: "compute", Barrier: "barrier", UnpinAll: "unpinall",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d String = %q, want %q", k, k.String(), s)
		}
	}
}

func TestConstructors(t *testing.T) {
	c := addr.Coord{Row: 3, Column: 4}
	if op := LoadOp(c); op.Kind != Load || op.Coord != c {
		t.Error("LoadOp wrong")
	}
	if op := CStoreOp(c); op.Kind != CStore || op.Coord != c {
		t.Error("CStoreOp wrong")
	}
	if op := PinnedCLoadOp(c); op.Kind != CLoad || !op.Pin {
		t.Error("PinnedCLoadOp wrong")
	}
	if op := GatherOp(c, 7); op.Kind != Gather || op.GatherID != 7 {
		t.Error("GatherOp wrong")
	}
	if op := ComputeOp(12); op.Kind != Compute || op.Cycles != 12 {
		t.Error("ComputeOp wrong")
	}
	if BarrierOp().Kind != Barrier || UnpinAllOp().Kind != UnpinAll {
		t.Error("barrier/unpin constructors wrong")
	}
}

func TestStreamAccounting(t *testing.T) {
	s := Stream{
		LoadOp(addr.Coord{}),
		ComputeOp(5),
		CLoadOp(addr.Coord{}),
		BarrierOp(),
		ComputeOp(7),
		StoreOp(addr.Coord{}),
	}
	if got := s.MemOps(); got != 3 {
		t.Errorf("MemOps = %d, want 3", got)
	}
	if got := s.ComputeTotal(); got != 12 {
		t.Errorf("ComputeTotal = %d, want 12", got)
	}
}

func TestSplitExact(t *testing.T) {
	parts := Split(10, 4)
	want := [][2]int{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	for i := range want {
		if parts[i] != want[i] {
			t.Fatalf("Split(10,4) = %v, want %v", parts, want)
		}
	}
}

// TestSplitProperties: ranges are contiguous, cover [0,n), and are balanced
// within one element.
func TestSplitProperties(t *testing.T) {
	prop := func(n uint16, parts uint8) bool {
		p := int(parts%8) + 1
		ranges := Split(int(n), p)
		if len(ranges) != p {
			return false
		}
		prev := 0
		minSize, maxSize := int(n)+1, -1
		for _, r := range ranges {
			if r[0] != prev || r[1] < r[0] {
				return false
			}
			size := r[1] - r[0]
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
			prev = r[1]
		}
		return prev == int(n) && maxSize-minSize <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitZeroParts(t *testing.T) {
	ranges := Split(5, 0)
	if len(ranges) != 1 || ranges[0] != [2]int{0, 5} {
		t.Fatalf("Split(5,0) = %v", ranges)
	}
}
