package workload

import (
	"fmt"

	"rcnvm/internal/config"
	"rcnvm/internal/device"
	"rcnvm/internal/imdb"
	"rcnvm/internal/query"
	"rcnvm/internal/sim"
)

// MicroSpec is one Figure 17 micro-benchmark: a full-table scan in one
// direction over one intra-chunk layout.
type MicroSpec struct {
	ID     string
	Layout imdb.Layout // L1 = RowMajor, L2 = ColMajor
	Column bool        // scan direction: false = row (tuple-major), true = column (field-major)
	Write  bool
}

// MicroSpecs returns the eight Figure 17 micro-benchmarks in the paper's
// order.
func MicroSpecs() []MicroSpec {
	return []MicroSpec{
		{ID: "row-read-L1", Layout: imdb.RowMajor},
		{ID: "row-write-L1", Layout: imdb.RowMajor, Write: true},
		{ID: "row-read-L2", Layout: imdb.ColMajor},
		{ID: "row-write-L2", Layout: imdb.ColMajor, Write: true},
		{ID: "col-read-L1", Layout: imdb.RowMajor, Column: true},
		{ID: "col-write-L1", Layout: imdb.RowMajor, Column: true, Write: true},
		{ID: "col-read-L2", Layout: imdb.ColMajor, Column: true},
		{ID: "col-write-L2", Layout: imdb.ColMajor, Column: true, Write: true},
	}
}

// MicroTable is the table scanned by the micro-benchmarks (the table-a
// shape).
func MicroTable(p Params) *imdb.Table {
	return imdb.NewTable(imdb.Uniform("micro", 16), p.TuplesA)
}

// placeMicro places the micro table with the requested layout on the
// system's memory: native subarrays for RC-NVM and RRAM, flattened grids
// for DRAM/GS-DRAM.
func placeMicro(sys config.System, p Params, layout imdb.Layout) (imdb.Placement, error) {
	tbl := MicroTable(p)
	switch sys.Device.Kind {
	case device.RCNVM, device.RRAM:
		return imdb.NewNVMAllocatorSpread(sys.Device.Geom, spreadChunks).Place(tbl, layout)
	default:
		return imdb.NewGridAllocator(sys.Device.Geom).Place(tbl, layout)
	}
}

// RunMicro executes one micro-benchmark on one system.
func RunMicro(sys config.System, m MicroSpec, p Params) (sim.Result, error) {
	place, err := placeMicro(sys, p, m.Layout)
	if err != nil {
		return sim.Result{}, err
	}
	e := query.New(query.ArchOf(sys.Device.Kind), sys.CPU.Cores)
	e.BeginQuery(place.Table())
	if m.Column {
		err = e.ScanColumns(place, m.Write, 1)
	} else {
		err = e.ScanTuples(place, m.Write, int64(place.Table().Schema.TupleWords()))
	}
	if err != nil {
		return sim.Result{}, fmt.Errorf("micro %s: %w", m.ID, err)
	}
	res, err := sim.RunOn(sys, e.Streams())
	if err != nil {
		return sim.Result{}, err
	}
	res.Name = fmt.Sprintf("%s/%s", m.ID, sys.Name)
	return res, nil
}
