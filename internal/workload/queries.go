package workload

import (
	"rcnvm/internal/imdb"
	"rcnvm/internal/query"
)

// Spec is one benchmark query of Table 2.
type Spec struct {
	ID    string
	SQL   string
	Class string // OLTP / OLAP / OLXP
	Build func(env *Env) error
}

// Selectivities chosen to reproduce the behaviours Table 2 describes
// ("most of f10 is NOT greater than x" for Q2, "most ... greater" for Q3).
const (
	selQ1      = 0.10
	selQ2      = 0.02
	selQ3      = 0.90
	selAgg     = 0.30 // Q4..Q7
	selJoin    = 0.05 // Q8/Q9 matched pairs
	selConj    = 0.06 // Q10/Q11 conjunctive predicates
	selUpdate  = 0.01 // Q12/Q13 point-ish updates
	allAFields = 16
	allBFields = 20
)

func fieldNames(prefix int) []string {
	out := make([]string, prefix)
	for i := range out {
		out[i] = imdb.Uniform("", prefix).Fields[i].Name
	}
	return out
}

// Queries returns Q1..Q13, the Figure 18/19/20/21 set.
func Queries() []Spec {
	return []Spec{
		{
			ID: "Q1", Class: "OLTP",
			SQL: "SELECT f3, f4 FROM table-a WHERE f10 > x",
			Build: func(env *Env) error {
				e := env.Exec
				e.BeginQuery(env.A.Table())
				if err := e.ScanField(env.A, "f10", false, query.CmpCycles); err != nil {
					return err
				}
				e.Barrier()
				m := selectTuples(env.Params.TuplesA, selQ1, env.Params.Seed+1)
				return e.FetchTuples(env.A, m, []string{"f3", "f4"}, query.TouchCycles)
			},
		},
		{
			ID: "Q2", Class: "OLTP",
			SQL: "SELECT * FROM table-b WHERE f10 > x (most NOT > x)",
			Build: func(env *Env) error {
				e := env.Exec
				e.BeginQuery(env.B.Table())
				if err := e.ScanField(env.B, "f10", false, query.CmpCycles); err != nil {
					return err
				}
				e.Barrier()
				m := selectTuples(env.Params.TuplesB, selQ2, env.Params.Seed+2)
				return e.FetchTuples(env.B, m, fieldNames(allBFields), query.TouchCycles)
			},
		},
		{
			ID: "Q3", Class: "OLTP",
			SQL: "SELECT * FROM table-b WHERE f10 > x (most > x)",
			Build: func(env *Env) error {
				e := env.Exec
				e.BeginQuery(env.B.Table())
				if err := e.ScanField(env.B, "f10", false, query.CmpCycles); err != nil {
					return err
				}
				e.Barrier()
				m := selectTuples(env.Params.TuplesB, selQ3, env.Params.Seed+3)
				return e.FetchTuples(env.B, m, fieldNames(allBFields), query.TouchCycles)
			},
		},
		{
			ID: "Q4", Class: "OLAP",
			SQL: "SELECT SUM(f9) FROM table-a WHERE f10 > x",
			Build: func(env *Env) error {
				return aggregate(env, env.A, env.Params.TuplesA, "f10", "f9", env.Params.Seed+4)
			},
		},
		{
			ID: "Q5", Class: "OLAP",
			SQL: "SELECT SUM(f9) FROM table-b WHERE f10 > x",
			Build: func(env *Env) error {
				return aggregate(env, env.B, env.Params.TuplesB, "f10", "f9", env.Params.Seed+5)
			},
		},
		{
			ID: "Q6", Class: "OLAP",
			SQL: "SELECT AVG(f1) FROM table-a WHERE f10 > x",
			Build: func(env *Env) error {
				return aggregate(env, env.A, env.Params.TuplesA, "f10", "f1", env.Params.Seed+6)
			},
		},
		{
			ID: "Q7", Class: "OLAP",
			SQL: "SELECT AVG(f1) FROM table-b WHERE f10 > x",
			Build: func(env *Env) error {
				return aggregate(env, env.B, env.Params.TuplesB, "f10", "f1", env.Params.Seed+7)
			},
		},
		{
			ID: "Q8", Class: "OLAP",
			SQL: "SELECT a.f3, b.f4 FROM table-a a, table-b b WHERE a.f1 > b.f1 AND a.f9 = b.f9",
			Build: func(env *Env) error {
				return join(env, true)
			},
		},
		{
			ID: "Q9", Class: "OLAP",
			SQL: "SELECT a.f3, b.f4 FROM table-a a, table-b b WHERE a.f9 = b.f9",
			Build: func(env *Env) error {
				return join(env, false)
			},
		},
		{
			ID: "Q10", Class: "OLTP",
			SQL: "SELECT f3, f4 FROM table-a WHERE f1 > x AND f9 < y",
			Build: func(env *Env) error {
				return conjunctive(env, "f1", "f9", env.Params.Seed+10)
			},
		},
		{
			ID: "Q11", Class: "OLTP",
			SQL: "SELECT f3, f4 FROM table-a WHERE f1 > x AND f2 < y",
			Build: func(env *Env) error {
				return conjunctive(env, "f1", "f2", env.Params.Seed+11)
			},
		},
		{
			ID: "Q12", Class: "OLTP",
			SQL: "UPDATE table-b SET f3 = x, f4 = y WHERE f10 = z",
			Build: func(env *Env) error {
				e := env.Exec
				e.BeginQuery(env.B.Table())
				if err := e.ScanField(env.B, "f10", false, query.CmpCycles); err != nil {
					return err
				}
				e.Barrier()
				m := selectTuples(env.Params.TuplesB, selUpdate, env.Params.Seed+12)
				return e.UpdateTuples(env.B, m, []string{"f3", "f4"}, query.TouchCycles)
			},
		},
		{
			ID: "Q13", Class: "OLTP",
			SQL: "UPDATE table-b SET f9 = x WHERE f10 = y",
			Build: func(env *Env) error {
				e := env.Exec
				e.BeginQuery(env.B.Table())
				if err := e.ScanField(env.B, "f10", false, query.CmpCycles); err != nil {
					return err
				}
				e.Barrier()
				m := selectTuples(env.Params.TuplesB, selUpdate, env.Params.Seed+13)
				return e.UpdateTuples(env.B, m, []string{"f9"}, query.TouchCycles)
			},
		},
	}
}

// aggregate is the Q4..Q7 shape: predicate scan, then aggregate over the
// matches.
func aggregate(env *Env, p imdb.Placement, tuples int, scanField, aggField string, seed int64) error {
	e := env.Exec
	e.BeginQuery(p.Table())
	if err := e.ScanField(p, scanField, false, query.CmpCycles); err != nil {
		return err
	}
	e.Barrier()
	m := selectTuples(tuples, selAgg, seed)
	return e.ScanMatches(p, aggField, m, query.AggCycles)
}

// join is the Q8/Q9 shape: hash build over a.f9, probe with b.f9, then
// fetch the output fields of the matched pairs (plus the f1 comparison
// fields for Q8).
func join(env *Env, withFilter bool) error {
	e := env.Exec
	p := env.Params
	e.BeginQuery(env.A.Table(), env.B.Table())

	if err := e.ScanField(env.A, "f9", false, query.CmpCycles); err != nil {
		return err
	}
	if err := e.HashOps(env.Hash, hashSlots(p.TuplesA, env.Hash.Table().Tuples), true, query.HashCycles); err != nil {
		return err
	}
	e.Barrier()
	if err := e.ScanField(env.B, "f9", false, query.CmpCycles); err != nil {
		return err
	}
	if err := e.HashOps(env.Hash, hashSlots(p.TuplesB, env.Hash.Table().Tuples), false, query.HashCycles); err != nil {
		return err
	}
	e.Barrier()

	ma := selectTuples(p.TuplesA, selJoin, p.Seed+80)
	mb := selectTuples(p.TuplesB, selJoin, p.Seed+81)
	fa, fb := []string{"f3"}, []string{"f4"}
	if withFilter {
		fa, fb = []string{"f1", "f3"}, []string{"f1", "f4"}
	}
	if err := e.FetchTuples(env.A, ma, fa, query.TouchCycles); err != nil {
		return err
	}
	return e.FetchTuples(env.B, mb, fb, query.TouchCycles)
}

// conjunctive is the Q10/Q11 shape: two predicate column scans, then fetch
// of the conjunction's matches.
func conjunctive(env *Env, fieldX, fieldY string, seed int64) error {
	e := env.Exec
	e.BeginQuery(env.A.Table())
	if err := e.ScanField(env.A, fieldX, false, query.CmpCycles); err != nil {
		return err
	}
	if err := e.ScanField(env.A, fieldY, false, query.CmpCycles); err != nil {
		return err
	}
	e.Barrier()
	m := selectTuples(env.Params.TuplesA, selConj, seed)
	return e.FetchTuples(env.A, m, []string{"f3", "f4"}, query.TouchCycles)
}

// GroupQueries returns Q14/Q15, the Figure 23 group-caching set. The
// group-caching depth comes from Params.GroupLines.
func GroupQueries() []Spec {
	return []Spec{
		{
			ID: "Q14", Class: "OLAP",
			SQL: "SELECT SUM(f2_wide) FROM table-c (wide field read)",
			Build: func(env *Env) error {
				e := env.Exec
				e.BeginQuery(env.C.Table())
				return e.GroupRead(env.C, []string{"f2_wide"}, env.Params.GroupLines, query.AggCycles)
			},
		},
		{
			ID: "Q15", Class: "OLXP",
			SQL: "SELECT f3, f6, f10 FROM table-a",
			Build: func(env *Env) error {
				e := env.Exec
				e.BeginQuery(env.A.Table())
				return e.GroupRead(env.A, []string{"f3", "f6", "f10"}, env.Params.GroupLines, query.TouchCycles)
			},
		},
	}
}

// QueryByID looks a query up across both sets.
func QueryByID(id string) (Spec, bool) {
	for _, q := range Queries() {
		if q.ID == id {
			return q, true
		}
	}
	for _, q := range GroupQueries() {
		if q.ID == id {
			return q, true
		}
	}
	return Spec{}, false
}
