package workload

import "fmt"

// This file is the *executable* counterpart of queries.go: where Queries()
// builds access-stream plans for the timing model, SQLQueries() states the
// same Q1..Q15 shapes as real SQL the engine executes end to end. The
// cross-shard equivalence suite and the shard-scaling sweep run these
// statements on clusters of different sizes and demand byte-identical
// results, so both the data and the statement order are fixed and fully
// deterministic.

// SQLQuery is one executable statement of the end-to-end SQL suite.
type SQLQuery struct {
	ID  string
	SQL string
}

// sqlmix is the suite's value generator (splitmix64): field k of row r in
// table t is a pure function of (t, r, k).
func sqlmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sqlVal is field k of row r in table t. Most fields are uniform in
// [0,1000); f16 of table_a is a low-cardinality group key in [0,8).
func sqlVal(table uint64, row, k int) uint64 {
	v := sqlmix(table*0x10001 + uint64(row)*64 + uint64(k))
	if table == 1 && k == 15 { // table_a.f16: GROUP BY key
		return v % 8
	}
	return v % 1000
}

// SQLSetup returns the DDL and load statements for the default suite
// sizes.
func SQLSetup() []string { return SQLSetupRows(240, 180, 60) }

// SQLSetupRows builds the suite's three tables: table_a (16 narrow
// fields), table_b (20 narrow fields) and table_c (a 4-word wide field
// between two narrow ones), loading deterministic values in batched
// INSERTs.
func SQLSetupRows(rowsA, rowsB, rowsC int) []string {
	out := []string{
		"CREATE TABLE table_a (f1, f2, f3, f4, f5, f6, f7, f8, f9, f10, f11, f12, f13, f14, f15, f16) CAPACITY 4096",
		"CREATE TABLE table_b (f1, f2, f3, f4, f5, f6, f7, f8, f9, f10, f11, f12, f13, f14, f15, f16, f17, f18, f19, f20) CAPACITY 4096",
		"CREATE TABLE table_c (f1, f2_wide WIDE 4, f3) CAPACITY 1024",
	}
	out = append(out, insertBatches("table_a", 1, rowsA, 16)...)
	out = append(out, insertBatches("table_b", 2, rowsB, 20)...)
	out = append(out, insertBatches("table_c", 3, rowsC, 6)...)
	return out
}

// insertBatches emits INSERTs of up to 24 rows each.
func insertBatches(table string, tid uint64, rows, words int) []string {
	const batch = 24
	var out []string
	for start := 0; start < rows; start += batch {
		end := start + batch
		if end > rows {
			end = rows
		}
		stmt := "INSERT INTO " + table + " VALUES "
		for r := start; r < end; r++ {
			if r > start {
				stmt += ", "
			}
			stmt += "("
			for k := 0; k < words; k++ {
				if k > 0 {
					stmt += ", "
				}
				stmt += fmt.Sprintf("%d", sqlVal(tid, r, k))
			}
			stmt += ")"
		}
		out = append(out, stmt)
	}
	return out
}

// SQLQueries returns the executable suite in its fixed run order.
// Mutations (Q12/Q13, X11, X12, X14) are part of the sequence: later
// statements observe their effects, so the whole ordered transcript must
// match across shard counts, not just individual statements.
func SQLQueries() []SQLQuery {
	return []SQLQuery{
		// The Table 2 shapes, stated as executable SQL.
		{ID: "Q1", SQL: "SELECT f3, f4 FROM table_a WHERE f10 > 800"},
		{ID: "Q2", SQL: "SELECT * FROM table_b WHERE f10 > 980"},
		{ID: "Q3", SQL: "SELECT * FROM table_b WHERE f10 > 100 LIMIT 50"},
		{ID: "Q4", SQL: "SELECT SUM(f9) FROM table_a WHERE f10 > 700"},
		{ID: "Q5", SQL: "SELECT SUM(f9) FROM table_b WHERE f10 > 700"},
		{ID: "Q6", SQL: "SELECT AVG(f1) FROM table_a WHERE f10 > 700"},
		{ID: "Q7", SQL: "SELECT AVG(f1) FROM table_b WHERE f10 > 700"},
		{ID: "Q8", SQL: "SELECT table_a.f3, table_b.f4 FROM table_a JOIN table_b ON table_a.f9 = table_b.f9"},
		{ID: "Q9", SQL: "SELECT table_a.f1, table_b.f1 FROM table_a JOIN table_b ON table_a.f9 = table_b.f9"},
		{ID: "Q10", SQL: "SELECT f3, f4 FROM table_a WHERE f1 > 500 AND f9 < 300"},
		{ID: "Q11", SQL: "SELECT f3, f4 FROM table_a WHERE f1 > 500 AND f2 < 300"},
		{ID: "Q12", SQL: "UPDATE table_b SET f3 = 11, f4 = 22 WHERE f10 = 5"},
		{ID: "Q13", SQL: "UPDATE table_b SET f9 = 7 WHERE f10 = 6"},
		{ID: "Q14", SQL: "SELECT * FROM table_c WHERE f1 > 500 LIMIT 20"},
		{ID: "Q15", SQL: "SELECT f3, f6, f10 FROM table_a"},

		// Extra coverage beyond Table 2.
		{ID: "X1", SQL: "SELECT COUNT(*) FROM table_a"},
		{ID: "X2", SQL: "SELECT MIN(f2), MAX(f2), COUNT(*) FROM table_a WHERE f1 > 200"},
		// X3 regresses the empty-WHERE aggregate bug: a predicate matching
		// nothing must sum nothing, not the whole table.
		{ID: "X3", SQL: "SELECT SUM(f9), COUNT(*) FROM table_a WHERE f1 = 1000001"},
		{ID: "X5", SQL: "SELECT f16, SUM(f9) FROM table_a GROUP BY f16"},
		{ID: "X6", SQL: "SELECT f16, COUNT(*) FROM table_a GROUP BY f16 ORDER BY f16 DESC LIMIT 5"},
		{ID: "X7", SQL: "SELECT f16, AVG(f9) FROM table_a WHERE f1 > 300 GROUP BY f16"},
		{ID: "X8", SQL: "SELECT f1, f2 FROM table_a WHERE f10 < 200 ORDER BY f2 DESC LIMIT 10"},
		{ID: "X9", SQL: "SELECT f1, f16 FROM table_a WHERE f9 < 500 ORDER BY f16 LIMIT 20"},
		{ID: "X10", SQL: "SELECT * FROM table_a WHERE f1 = 123"},
		{ID: "X11", SQL: "UPDATE table_a SET f3 = 999 WHERE f1 = 123"},
		{ID: "X12", SQL: "DELETE FROM table_b WHERE f10 = 999"},
		{ID: "X13", SQL: "SELECT COUNT(*), MIN(f10), MAX(f10) FROM table_b"},
		// X14 rewrites table_a's partitioning column: point routing for
		// table_a is disabled from here on, and X15 must still match the
		// baseline through the broadcast path.
		{ID: "X14", SQL: "UPDATE table_a SET f1 = 5 WHERE f2 = 777"},
		{ID: "X15", SQL: "SELECT f1, f2, f3 FROM table_a WHERE f1 = 5"},
		{ID: "X16", SQL: "SELECT f16, SUM(f2) FROM table_a WHERE f10 >= 500 GROUP BY f16 ORDER BY f16 LIMIT 4"},
	}
}

// SQLErrorQueries returns statements whose *error values* (not results)
// must also match across shard counts.
func SQLErrorQueries() []SQLQuery {
	return []SQLQuery{
		// MIN over an empty match errors in the engine.
		{ID: "E1", SQL: "SELECT MIN(f2) FROM table_a WHERE f1 = 1000001"},
		// Unknown column, unknown table, aggregate mixing.
		{ID: "E2", SQL: "SELECT SUM(nope) FROM table_a"},
		{ID: "E3", SQL: "SELECT * FROM no_such_table"},
		{ID: "E4", SQL: "SELECT f1, SUM(f2) FROM table_a"},
		// GROUP BY shape violations.
		{ID: "E5", SQL: "SELECT f2, SUM(f9) FROM table_a GROUP BY f16"},
		{ID: "E6", SQL: "SELECT f16, MIN(f9) FROM table_a GROUP BY f16"},
		// Wide-field misuse.
		{ID: "E7", SQL: "SELECT SUM(f2_wide) FROM table_c"},
		{ID: "E8", SQL: "SELECT f1 FROM table_c WHERE f2_wide = 3"},
		{ID: "E9", SQL: "SELECT f1 FROM table_c ORDER BY f2_wide"},
		// Join key must be single-word.
		{ID: "E10", SQL: "SELECT table_c.f1, table_c.f3 FROM table_c JOIN table_c ON table_c.f2_wide = table_c.f2_wide"},
	}
}
