// Package workload defines the evaluation workloads of the paper: the
// fifteen benchmark queries of Table 2 over tables a, b and c, and the
// eight micro-benchmarks of Figure 17 (row/column read/write over the two
// intra-chunk layouts). Each workload builds per-architecture trace streams
// through the query planner; the experiment harness runs them on the
// simulated systems.
package workload

import (
	"fmt"
	"math/rand"

	"rcnvm/internal/config"
	"rcnvm/internal/device"
	"rcnvm/internal/imdb"
	"rcnvm/internal/query"
	"rcnvm/internal/sim"
	"rcnvm/internal/trace"
)

// Params scales the workloads.
type Params struct {
	TuplesA int // table-a: 16 fixed 8-byte fields
	TuplesB int // table-b: 20 fixed 8-byte fields
	TuplesC int // table-c: variant-length fields incl. the wide f2_wide
	Seed    int64
	// GroupLines is the group-caching depth (cache lines prefetched per
	// column) for Q14/Q15; 0 disables group caching.
	GroupLines int
	// DisablePinning turns group-caching cache pinning off (ablation).
	DisablePinning bool
}

// DefaultParams is the benchmark scale (tables exceed the 8 MB L3).
func DefaultParams() Params {
	return Params{TuplesA: 128 * 1024, TuplesB: 128 * 1024, TuplesC: 64 * 1024, Seed: 42}
}

// SmallParams is the fast scale used by tests.
func SmallParams() Params {
	return Params{TuplesA: 8192, TuplesB: 8192, TuplesC: 4096, Seed: 42}
}

// SchemaA is table-a: 16 single-word fields (power-of-2 tuple size, the
// GS-DRAM-friendly shape).
func SchemaA() imdb.Schema { return imdb.Uniform("table-a", 16) }

// SchemaB is table-b: 20 single-word fields (non-power-of-2; GS-DRAM cannot
// gather it).
func SchemaB() imdb.Schema { return imdb.Uniform("table-b", 20) }

// SchemaC is table-c: variant-length fields including the 32-byte wide
// field f2_wide of the §5 wide-field example.
func SchemaC() imdb.Schema {
	return imdb.Schema{Name: "table-c", Fields: []imdb.Field{
		{Name: "f1", Words: 1},
		{Name: "f2_wide", Words: 4},
		{Name: "f3", Words: 1},
		{Name: "f4", Words: 1},
		{Name: "f5", Words: 1},
	}}
}

// schemaHash is the hash-table work area used by the join queries. Joins
// are radix-partitioned (standard IMDB practice), so the active partition's
// hash table is sized to stay cache-resident; the per-op hash compute cost
// is still charged on every build/probe.
func schemaHash() imdb.Schema { return imdb.Uniform("hash", 2) }

// Env holds one system's placements and executor for one workload run.
type Env struct {
	Sys    config.System
	Params Params
	Exec   *query.Executor

	A, B, C imdb.Placement
	Hash    imdb.Placement
}

// NewEnv places the tables for the given system: RC-NVM uses the chunked
// column-oriented layout (the paper's default after Figure 17); plain RRAM
// uses the row-major layout on the same subarray structure; DRAM and
// GS-DRAM use the classical linear row store.
func NewEnv(sys config.System, p Params) (*Env, error) {
	env := &Env{
		Sys:    sys,
		Params: p,
		Exec:   query.New(query.ArchOf(sys.Device.Kind), sys.CPU.Cores),
	}
	env.Exec.SetPinning(!p.DisablePinning)
	ta := imdb.NewTable(SchemaA(), p.TuplesA)
	tb := imdb.NewTable(SchemaB(), p.TuplesB)
	tc := imdb.NewTable(SchemaC(), p.TuplesC)
	th := imdb.NewTable(schemaHash(), hashSlotsFor(maxInt(p.TuplesA, p.TuplesB)/8))

	switch sys.Device.Kind {
	case device.RCNVM:
		alloc := imdb.NewNVMAllocatorSpread(sys.Device.Geom, spreadChunks)
		var err error
		if env.A, err = alloc.Place(ta, imdb.ColMajor); err != nil {
			return nil, err
		}
		if env.B, err = alloc.Place(tb, imdb.ColMajor); err != nil {
			return nil, err
		}
		if env.C, err = alloc.Place(tc, imdb.ColMajor); err != nil {
			return nil, err
		}
		if env.Hash, err = alloc.Place(th, imdb.RowMajor); err != nil {
			return nil, err
		}
	case device.RRAM:
		alloc := imdb.NewNVMAllocatorSpread(sys.Device.Geom, spreadChunks)
		var err error
		if env.A, err = alloc.Place(ta, imdb.RowMajor); err != nil {
			return nil, err
		}
		if env.B, err = alloc.Place(tb, imdb.RowMajor); err != nil {
			return nil, err
		}
		if env.C, err = alloc.Place(tc, imdb.RowMajor); err != nil {
			return nil, err
		}
		if env.Hash, err = alloc.Place(th, imdb.RowMajor); err != nil {
			return nil, err
		}
	default: // DRAM, GS-DRAM
		alloc := imdb.NewLinearAllocator(sys.Device.Geom)
		var err error
		if env.A, err = alloc.Place(ta); err != nil {
			return nil, err
		}
		if env.B, err = alloc.Place(tb); err != nil {
			return nil, err
		}
		if env.C, err = alloc.Place(tc); err != nil {
			return nil, err
		}
		if env.Hash, err = alloc.Place(th); err != nil {
			return nil, err
		}
	}
	return env, nil
}

// spreadChunks is how many subarray chunks each benchmark table is sliced
// into on the NVM systems: enough to engage every bank of both channels.
const spreadChunks = 32

// hashSlotsFor sizes the hash work area to the next power of two.
func hashSlotsFor(n int) int {
	s := 1
	for s < n {
		s <<= 1
	}
	return s
}

// selectTuples draws a deterministic sorted match set with the given
// selectivity.
func selectTuples(n int, sel float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, 0, int(float64(n)*sel)+16)
	for i := 0; i < n; i++ {
		if rng.Float64() < sel {
			out = append(out, i)
		}
	}
	return out
}

// hashSlots maps tuple indices to pseudo-random hash-table slots
// (Fibonacci hashing, deterministic).
func hashSlots(n, slots int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = int(uint32(i)*2654435761) % slots
	}
	return out
}

// Run builds and executes one query workload on one system.
func Run(sys config.System, spec Spec, p Params) (sim.Result, error) {
	env, err := NewEnv(sys, p)
	if err != nil {
		return sim.Result{}, err
	}
	if err := spec.Build(env); err != nil {
		return sim.Result{}, fmt.Errorf("workload %s: %w", spec.ID, err)
	}
	return sim.RunOn(sys, env.Exec.Streams())
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MixedStreams builds the OLXP mix the paper's introduction motivates:
// half the cores run OLTP against table-a (point fetches of two fields and
// single-field updates over a hot set) while the other half concurrently
// runs OLAP (two full-column aggregate scans) on the same single copy of
// the data.
func MixedStreams(sys config.System, p Params) ([]trace.Stream, error) {
	env, err := NewEnv(sys, p)
	if err != nil {
		return nil, err
	}
	cores := sys.CPU.Cores
	oltpCores := cores / 2
	if oltpCores == 0 {
		oltpCores = 1
	}

	oltp := query.New(query.ArchOf(sys.Device.Kind), oltpCores)
	oltp.BeginQuery(env.A.Table())
	hot := selectTuples(p.TuplesA, 0.02, p.Seed+200)
	if err := oltp.FetchTuples(env.A, hot, []string{"f3", "f4"}, query.TouchCycles); err != nil {
		return nil, err
	}
	if err := oltp.UpdateTuples(env.A, hot, []string{"f9"}, query.TouchCycles); err != nil {
		return nil, err
	}

	olap := query.New(query.ArchOf(sys.Device.Kind), cores-oltpCores)
	olap.BeginQuery(env.A.Table())
	if err := olap.ScanField(env.A, "f10", false, query.CmpCycles); err != nil {
		return nil, err
	}
	if err := olap.ScanField(env.A, "f1", false, query.AggCycles); err != nil {
		return nil, err
	}

	streams := make([]trace.Stream, 0, cores)
	streams = append(streams, oltp.Streams()...)
	streams = append(streams, olap.Streams()...)
	return streams, nil
}

// RunMixed executes the OLXP mix on one system.
func RunMixed(sys config.System, p Params) (sim.Result, error) {
	streams, err := MixedStreams(sys, p)
	if err != nil {
		return sim.Result{}, err
	}
	return sim.RunOn(sys, streams)
}

// MixedStreamsRounds is the sustained form of the OLXP mix: the OLTP
// transaction set (hot-set point fetches + single-field updates) and the
// OLAP scan set repeat rounds times, modeling a steady-state serving
// window instead of MixedStreams's single pass. Repetition is what
// exposes memory-system steady-state behavior — hot rows re-miss the
// row buffer across passes once the working set exceeds the LLC — and is
// the workload of the hybrid DRAM-tier sweep. rounds <= 1 degenerates to
// the single-pass mix.
func MixedStreamsRounds(sys config.System, p Params, rounds int) ([]trace.Stream, error) {
	env, err := NewEnv(sys, p)
	if err != nil {
		return nil, err
	}
	cores := sys.CPU.Cores
	oltpCores := cores / 2
	if oltpCores == 0 {
		oltpCores = 1
	}
	if rounds < 1 {
		rounds = 1
	}

	oltp := query.New(query.ArchOf(sys.Device.Kind), oltpCores)
	oltp.BeginQuery(env.A.Table())
	hot := selectTuples(p.TuplesA, 0.02, p.Seed+200)
	olap := query.New(query.ArchOf(sys.Device.Kind), cores-oltpCores)
	olap.BeginQuery(env.A.Table())
	for r := 0; r < rounds; r++ {
		if err := oltp.FetchTuples(env.A, hot, []string{"f3", "f4"}, query.TouchCycles); err != nil {
			return nil, err
		}
		if err := oltp.UpdateTuples(env.A, hot, []string{"f9"}, query.TouchCycles); err != nil {
			return nil, err
		}
		if err := olap.ScanField(env.A, "f10", false, query.CmpCycles); err != nil {
			return nil, err
		}
		if err := olap.ScanField(env.A, "f1", false, query.AggCycles); err != nil {
			return nil, err
		}
	}

	streams := make([]trace.Stream, 0, cores)
	streams = append(streams, oltp.Streams()...)
	streams = append(streams, olap.Streams()...)
	return streams, nil
}

// RunMixedRounds executes the sustained OLXP mix on one system.
func RunMixedRounds(sys config.System, p Params, rounds int) (sim.Result, error) {
	streams, err := MixedStreamsRounds(sys, p, rounds)
	if err != nil {
		return sim.Result{}, err
	}
	return sim.RunOn(sys, streams)
}
