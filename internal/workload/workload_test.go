package workload

import (
	"testing"

	"rcnvm/internal/config"
	"rcnvm/internal/imdb"
	"rcnvm/internal/sim"
	"rcnvm/internal/stats"
)

// smallCache shrinks the cache hierarchy so that the SmallParams tables
// (≈1 MB) are memory-resident, making the small-scale shape tests
// memory-bound like the full-scale benchmarks (whose tables exceed the
// 8 MB L3 of Table 1).
func smallCache(sys config.System) config.System {
	sys.Cache.L2Sets = 64  // 32 KB
	sys.Cache.L3Sets = 256 // 128 KB
	return sys
}

func runQ(t *testing.T, sys config.System, id string, p Params) sim.Result {
	t.Helper()
	spec, ok := QueryByID(id)
	if !ok {
		t.Fatalf("unknown query %s", id)
	}
	res, err := Run(sys, spec, p)
	if err != nil {
		t.Fatalf("%s on %s: %v", id, sys.Name, err)
	}
	return res
}

func TestAllQueriesRunOnAllSystems(t *testing.T) {
	p := SmallParams()
	for _, sys := range config.All() {
		for _, q := range Queries() {
			res := runQ(t, sys, q.ID, p)
			if res.TimePs <= 0 {
				t.Errorf("%s on %s: non-positive time", q.ID, sys.Name)
			}
			if res.LLCMisses() == 0 {
				t.Errorf("%s on %s: no memory traffic", q.ID, sys.Name)
			}
		}
	}
}

func TestGroupQueriesRun(t *testing.T) {
	p := SmallParams()
	for _, g := range []int{0, 32} {
		p.GroupLines = g
		for _, sys := range []config.System{config.RCNVM(), config.DRAM()} {
			for _, q := range GroupQueries() {
				res := runQ(t, sys, q.ID, p)
				if res.TimePs <= 0 {
					t.Errorf("%s (g=%d) on %s failed", q.ID, g, sys.Name)
				}
			}
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	p := SmallParams()
	a := runQ(t, config.RCNVM(), "Q4", p)
	b := runQ(t, config.RCNVM(), "Q4", p)
	if a.TimePs != b.TimePs || a.LLCMisses() != b.LLCMisses() {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

// TestAggregateShape reproduces the headline behaviour on the aggregate
// queries: RC-NVM beats DRAM and RRAM by a large factor, and its LLC
// misses drop well below a third of DRAM's (Figure 19).
func TestAggregateShape(t *testing.T) {
	p := SmallParams()
	rc := runQ(t, smallCache(config.RCNVM()), "Q6", p)
	dram := runQ(t, smallCache(config.DRAM()), "Q6", p)
	rram := runQ(t, smallCache(config.RRAM()), "Q6", p)
	if rc.TimePs*3 > dram.TimePs {
		t.Errorf("Q6: RC-NVM %.2fM vs DRAM %.2fM cycles; want >3x win",
			rc.MCycles(), dram.MCycles())
	}
	if rc.TimePs*3 > rram.TimePs {
		t.Errorf("Q6: RC-NVM %.2fM vs RRAM %.2fM cycles; want >3x win",
			rc.MCycles(), rram.MCycles())
	}
	if rc.LLCMisses()*3 > dram.LLCMisses() {
		t.Errorf("Q6: RC-NVM misses %d vs DRAM %d; want < 1/3", rc.LLCMisses(), dram.LLCMisses())
	}
}

// TestQ3Exception: Q3 is dominated by fetching 90% of full tuples —
// sequential row work where DRAM is the right tool and RC-NVM must not win
// big (the paper's one exception).
func TestQ3Exception(t *testing.T) {
	p := SmallParams()
	rc := runQ(t, smallCache(config.RCNVM()), "Q3", p)
	dram := runQ(t, smallCache(config.DRAM()), "Q3", p)
	// DRAM must at least tie (within 10%) — unlike every other query,
	// where RC-NVM wins by 2x and more.
	if dram.TimePs > rc.TimePs*11/10 {
		t.Errorf("Q3: DRAM %.2fM should at least tie RC-NVM %.2fM", dram.MCycles(), rc.MCycles())
	}
}

// TestGSDRAMShape: GS-DRAM helps the power-of-2 table-a aggregates but not
// the table-b ones.
func TestGSDRAMShape(t *testing.T) {
	p := SmallParams()
	gsA := runQ(t, smallCache(config.GSDRAM()), "Q4", p)
	dramA := runQ(t, smallCache(config.DRAM()), "Q4", p)
	if gsA.TimePs*2 > dramA.TimePs {
		t.Errorf("Q4: GS-DRAM %.2fM vs DRAM %.2fM; gather should win clearly",
			gsA.MCycles(), dramA.MCycles())
	}
	gsB := runQ(t, smallCache(config.GSDRAM()), "Q5", p)
	dramB := runQ(t, smallCache(config.DRAM()), "Q5", p)
	ratio := float64(gsB.TimePs) / float64(dramB.TimePs)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("Q5: GS-DRAM/DRAM = %.2f; non-power-of-2 should match DRAM", ratio)
	}
	// RC-NVM beats GS-DRAM clearly where gathering cannot work (table-b,
	// joins, updates) and therefore on average across the mix — the
	// paper's 2.37x average claim. (On the pure table-a aggregates both
	// move the same lines and GS-DRAM's faster DDR3 bus can win; see
	// EXPERIMENTS.md.)
	var rcSum, gsSum float64
	for _, id := range []string{"Q2", "Q4", "Q5", "Q8", "Q12"} {
		rcSum += runQ(t, smallCache(config.RCNVM()), id, p).MCycles()
		gsSum += runQ(t, smallCache(config.GSDRAM()), id, p).MCycles()
	}
	if rcSum*1.5 > gsSum {
		t.Errorf("average over mixed queries: RC-NVM %.2fM vs GS-DRAM %.2fM; want >1.5x win", rcSum, gsSum)
	}
}

// TestCoherenceOverheadSmall: the synonym/coherence overhead on RC-NVM
// queries stays within the paper's 0.2%..3.4% band (we assert < 5%).
func TestCoherenceOverheadSmall(t *testing.T) {
	p := SmallParams()
	for _, id := range []string{"Q1", "Q6", "Q12"} {
		res := runQ(t, config.RCNVM(), id, p)
		if ovh := res.OverheadRatio(); ovh > 0.05 {
			t.Errorf("%s coherence overhead = %.2f%%, want < 5%%", id, ovh*100)
		}
	}
}

func TestMicroAllRun(t *testing.T) {
	p := SmallParams()
	for _, sys := range []config.System{config.RCNVM(), config.RRAM(), config.DRAM()} {
		for _, m := range MicroSpecs() {
			res, err := RunMicro(sys, m, p)
			if err != nil {
				t.Fatalf("%s on %s: %v", m.ID, sys.Name, err)
			}
			if res.TimePs <= 0 {
				t.Errorf("%s on %s: no time", m.ID, sys.Name)
			}
		}
	}
}

// TestMicroShape: the Figure 17 orderings. Column scans on RC-NVM beat
// DRAM by a wide margin; row scans on DRAM beat RRAM; RC-NVM tracks RRAM
// on row scans.
func TestMicroShape(t *testing.T) {
	p := SmallParams()
	get := func(sys config.System, id string) sim.Result {
		for _, m := range MicroSpecs() {
			if m.ID == id {
				res, err := RunMicro(sys, m, p)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
		}
		t.Fatalf("no micro %s", id)
		return sim.Result{}
	}
	rcCol := get(smallCache(config.RCNVM()), "col-read-L2")
	dramCol := get(smallCache(config.DRAM()), "col-read-L2")
	if rcCol.TimePs*2 > dramCol.TimePs {
		t.Errorf("col-read-L2: RC-NVM %.2fM vs DRAM %.2fM; want clear win",
			rcCol.MCycles(), dramCol.MCycles())
	}
	rcRow := get(smallCache(config.RCNVM()), "row-read-L1")
	rramRow := get(smallCache(config.RRAM()), "row-read-L1")
	dramRow := get(smallCache(config.DRAM()), "row-read-L1")
	if dramRow.TimePs >= rramRow.TimePs {
		t.Errorf("row-read-L1: DRAM %.2fM should beat RRAM %.2fM",
			dramRow.MCycles(), rramRow.MCycles())
	}
	ratio := float64(rcRow.TimePs) / float64(rramRow.TimePs)
	if ratio > 1.15 {
		t.Errorf("row-read-L1: RC-NVM/RRAM = %.2f, want ~1.04", ratio)
	}
}

// TestGroupCachingImproves: Figure 23 — Q15 with 128-line group caching
// beats the no-group-caching baseline on RC-NVM.
func TestGroupCachingImproves(t *testing.T) {
	p := SmallParams()
	p.GroupLines = 0
	base := runQ(t, smallCache(config.RCNVM()), "Q15", p)
	p.GroupLines = 128
	grouped := runQ(t, smallCache(config.RCNVM()), "Q15", p)
	if grouped.TimePs >= base.TimePs {
		t.Errorf("Q15: group caching %.2fM not faster than baseline %.2fM",
			grouped.MCycles(), base.MCycles())
	}
}

func TestQueryByID(t *testing.T) {
	if _, ok := QueryByID("Q1"); !ok {
		t.Error("Q1 missing")
	}
	if _, ok := QueryByID("Q15"); !ok {
		t.Error("Q15 missing")
	}
	if _, ok := QueryByID("Q99"); ok {
		t.Error("Q99 should not exist")
	}
	if len(Queries()) != 13 || len(GroupQueries()) != 2 {
		t.Error("query set sizes wrong")
	}
}

func TestSelectTuplesDeterministic(t *testing.T) {
	a := selectTuples(1000, 0.1, 7)
	b := selectTuples(1000, 0.1, 7)
	if len(a) != len(b) {
		t.Fatal("nondeterministic selection")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic selection")
		}
	}
	// Roughly the right cardinality and sorted.
	if len(a) < 50 || len(a) > 200 {
		t.Errorf("selectivity off: %d of 1000", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatal("matches not sorted")
		}
	}
}

func TestHashSlotsInRange(t *testing.T) {
	s := hashSlots(1000, 1024)
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 1024 {
			t.Fatalf("slot %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 500 {
		t.Errorf("hash slots poorly spread: %d distinct", len(seen))
	}
}

func TestMemWritesOnUpdates(t *testing.T) {
	p := SmallParams()
	res := runQ(t, smallCache(config.RCNVM()), "Q13", p)
	if res.Counters[stats.MemWritebacks] == 0 {
		t.Error("update query produced no write-backs")
	}
}

// TestFigure18OrderingMatrix asserts the Figure 18 orderings for every
// query at the small memory-bound scale: RC-NVM beats plain RRAM
// everywhere, beats DRAM everywhere except the Q3 exception (where DRAM
// must at least tie), and GS-DRAM exactly matches DRAM wherever gathering
// cannot apply (table-b queries, joins, updates).
func TestFigure18OrderingMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run is slow")
	}
	p := SmallParams()
	type row struct{ rc, rram, gs, dram float64 }
	results := map[string]row{}
	for _, q := range Queries() {
		results[q.ID] = row{
			rc:   runQ(t, smallCache(config.RCNVM()), q.ID, p).MCycles(),
			rram: runQ(t, smallCache(config.RRAM()), q.ID, p).MCycles(),
			gs:   runQ(t, smallCache(config.GSDRAM()), q.ID, p).MCycles(),
			dram: runQ(t, smallCache(config.DRAM()), q.ID, p).MCycles(),
		}
	}
	for id, r := range results {
		if r.rc >= r.rram {
			t.Errorf("%s: RC-NVM %.3f not better than RRAM %.3f", id, r.rc, r.rram)
		}
		if id == "Q3" {
			if r.dram > r.rc*1.1 {
				t.Errorf("Q3: DRAM %.3f should at least tie RC-NVM %.3f", r.dram, r.rc)
			}
			continue
		}
		if r.rc >= r.dram {
			t.Errorf("%s: RC-NVM %.3f not better than DRAM %.3f", id, r.rc, r.dram)
		}
	}
	// GS-DRAM == DRAM on the non-gatherable queries.
	for _, id := range []string{"Q2", "Q3", "Q5", "Q7", "Q8", "Q9", "Q12", "Q13"} {
		r := results[id]
		ratio := r.gs / r.dram
		if ratio < 0.97 || ratio > 1.03 {
			t.Errorf("%s: GS-DRAM/DRAM = %.3f, want ~1 (gathering inapplicable)", id, ratio)
		}
	}
	// GS-DRAM clearly helps the gather-eligible table-a scans.
	for _, id := range []string{"Q1", "Q4", "Q6", "Q10", "Q11"} {
		r := results[id]
		if r.gs*15 > r.dram*10 {
			t.Errorf("%s: GS-DRAM %.3f not clearly better than DRAM %.3f", id, r.gs, r.dram)
		}
	}
}

// TestCacheInvariantsAfterQueries: the synonym/coherence machinery leaves
// the hierarchy structurally consistent after mixed-orientation workloads.
func TestCacheInvariantsAfterQueries(t *testing.T) {
	p := SmallParams()
	for _, id := range []string{"Q1", "Q2", "Q12"} {
		spec, _ := QueryByID(id)
		env, err := NewEnv(smallCache(config.RCNVM()), p)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Build(env); err != nil {
			t.Fatal(err)
		}
		s, err := sim.New(env.Sys)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(env.Exec.Streams()); err != nil {
			t.Fatal(err)
		}
		if err := s.Hier.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

// TestMixedWorkloadShape: the OLXP mix — the paper's motivating scenario —
// favours RC-NVM over both conventional memories.
func TestMixedWorkloadShape(t *testing.T) {
	p := SmallParams()
	rc, err := RunMixed(smallCache(config.RCNVM()), p)
	if err != nil {
		t.Fatal(err)
	}
	dram, err := RunMixed(smallCache(config.DRAM()), p)
	if err != nil {
		t.Fatal(err)
	}
	rram, err := RunMixed(smallCache(config.RRAM()), p)
	if err != nil {
		t.Fatal(err)
	}
	if rc.TimePs >= dram.TimePs || rc.TimePs >= rram.TimePs {
		t.Errorf("OLXP mix: RC-NVM %.3fM vs DRAM %.3fM / RRAM %.3fM",
			rc.MCycles(), dram.MCycles(), rram.MCycles())
	}
	// The mix genuinely uses both orientations on RC-NVM.
	if rc.Counters[stats.RowActivations] == 0 || rc.Counters[stats.ColActivations] == 0 {
		t.Error("mix should activate both row and column buffers")
	}
}

// TestPAXLayoutTradeoff: PAX (the software hybrid of the paper's related
// work) makes column scans fast on conventional DRAM but pays for it on
// whole-tuple reads — while RC-NVM's hardware dual addressing needs no such
// compromise. This is the §8 comparison against software-only approaches.
func TestPAXLayoutTradeoff(t *testing.T) {
	p := SmallParams()
	run := func(sys config.System, m MicroSpec) float64 {
		res, err := RunMicro(smallCache(sys), m, p)
		if err != nil {
			t.Fatal(err)
		}
		return res.MCycles()
	}
	colScan := func(layout imdb.Layout) MicroSpec {
		return MicroSpec{ID: "col-read", Layout: layout, Column: true}
	}
	rowScan := func(layout imdb.Layout) MicroSpec {
		return MicroSpec{ID: "row-read", Layout: layout}
	}

	dramRowStoreScan := run(config.DRAM(), colScan(imdb.RowMajor))
	dramPAXScan := run(config.DRAM(), colScan(imdb.PAX))
	rcScan := run(config.RCNVM(), colScan(imdb.ColMajor))
	if dramPAXScan*2 > dramRowStoreScan {
		t.Errorf("PAX col scan %.3fM should clearly beat row-store %.3fM on DRAM",
			dramPAXScan, dramRowStoreScan)
	}

	dramRowStoreFetch := run(config.DRAM(), rowScan(imdb.RowMajor))
	dramPAXFetch := run(config.DRAM(), rowScan(imdb.PAX))
	if dramPAXFetch <= dramRowStoreFetch {
		t.Errorf("PAX tuple fetch %.3fM should pay vs row-store %.3fM on DRAM",
			dramPAXFetch, dramRowStoreFetch)
	}

	// Hardware column access beats even the best software layout at its
	// own game: the RC-NVM column scan outruns the PAX scan on DRAM
	// despite the slower LPDDR3 bus.
	if rcScan >= dramPAXScan {
		t.Errorf("RC-NVM col scan %.3fM should beat DRAM PAX scan %.3fM", rcScan, dramPAXScan)
	}
}
