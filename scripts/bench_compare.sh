#!/usr/bin/env bash
# bench_compare.sh — the perf-regression gate.
#
# Runs the committed batching benchmark (BenchmarkServerBatch), captures
# its machine-readable result, and diffs it against the committed
# baselines under results/baselines/ with rcnvm-benchdiff. Exits non-zero
# on regression.
#
# The committed baselines pin machine-portable RATIOS (batched-vs-single
# speedups with tolerance bands and absolute floors), not raw stmts/s, so
# the gate holds on hardware of any absolute speed.
#
# Usage:
#   scripts/bench_compare.sh              run benchmark, compare, fail on regression
#   scripts/bench_compare.sh --self-test  prove the gate trips: degrade each baseline
#                                         metric past tolerance and require it caught
#   scripts/bench_compare.sh --update     escape hatch after an ACCEPTED perf change:
#                                         re-run and rewrite the baselines from this
#                                         run (directions/tolerances/floors carry
#                                         over). Commit the resulting diff so the
#                                         change is visible in review.
#
# Environment:
#   BENCHTIME   go test -benchtime for the measurement run (default 2s)
#   OUT         directory for the current run's BENCH_*.json (default mktemp)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINES=results/baselines
MODE="${1:-}"

if [[ "$MODE" == "--self-test" ]]; then
    exec go run ./cmd/rcnvm-benchdiff -self-test "$BASELINES"
fi

OUT="${OUT:-$(mktemp -d)}"
BENCHTIME="${BENCHTIME:-2s}"

echo "bench_compare: running BenchmarkServerBatch (benchtime=$BENCHTIME) -> $OUT" >&2
BENCH_JSON_DIR="$OUT" go test -run '^$' -bench 'BenchmarkServerBatch' -benchtime "$BENCHTIME" .

case "$MODE" in
"")
    exec go run ./cmd/rcnvm-benchdiff "$BASELINES" "$OUT"
    ;;
--update)
    go run ./cmd/rcnvm-benchdiff -update "$BASELINES" "$OUT"
    echo "bench_compare: baselines updated; review and commit the diff:" >&2
    git --no-pager diff --stat -- "$BASELINES" >&2
    ;;
*)
    echo "bench_compare: unknown mode $MODE (want --self-test, --update, or nothing)" >&2
    exit 2
    ;;
esac
