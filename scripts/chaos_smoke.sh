#!/usr/bin/env bash
# Chaos smoke test for the replicated serving set, on real binaries:
# 1 primary (durable) + 2 read replicas + 1 router as separate processes.
# A replica is kill -9'd under client load — the router must mask it
# (zero client-visible errors); the replica restarts, catches up, and all
# three nodes must byte-converge on /checksum. Then the primary itself is
# kill -9'd and recovered from its WAL, and the set must converge again.
# Finally: a second SIGINT during a drain must force-quit non-zero.
set -euo pipefail

DIR=$(mktemp -d)
DATA="$DIR/data"
BASE=${CHAOS_SMOKE_PORT:-7270}
P_TCP=$BASE;         P_HTTP=$((BASE + 1))
R1_TCP=$((BASE + 2)); R1_HTTP=$((BASE + 3))
R2_TCP=$((BASE + 4)); R2_HTTP=$((BASE + 5))
RT_TCP=$((BASE + 6)); RT_HTTP=$((BASE + 7))
PIDS=()

cleanup() {
    for pid in ${PIDS[@]+"${PIDS[@]}"}; do
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$DIR"
}
trap cleanup EXIT

# query <port> <sql> -> one NDJSON response line (bash /dev/tcp; no netcat).
query() {
    exec 3<>"/dev/tcp/127.0.0.1/$1"
    printf '{"query":"%s"}\n' "$2" >&3
    IFS= read -r line <&3
    exec 3<&- 3>&-
    printf '%s\n' "$line"
}

# http_get <port> <path> -> "<status> <body>" using HTTP/1.0 over /dev/tcp.
http_get() {
    local port=$1 path=$2 status="000" body="" line inbody=0
    if ! { exec 4<>"/dev/tcp/127.0.0.1/$port"; } 2>/dev/null; then
        printf '000\n'
        return 0
    fi
    printf 'GET %s HTTP/1.0\r\nHost: localhost\r\n\r\n' "$path" >&4
    while IFS= read -r line <&4; do
        line=${line%$'\r'}
        if [ "$inbody" = 1 ]; then
            body+="$line"
        elif [ "$status" = "000" ]; then
            status=$(printf '%s' "$line" | awk '{print $2}')
        elif [ -z "$line" ]; then
            inbody=1
        fi
    done
    exec 4<&- 4>&-
    printf '%s %s\n' "$status" "$body"
}

wait_ready() { # <http port> <name>
    for _ in $(seq 1 100); do
        if [ "$(http_get "$1" /readyz | awk '{print $1}')" = 200 ]; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: $2 never became ready" >&2
    cat "$DIR"/*.log >&2 || true
    return 1
}

checksum() { # <http port> -> the shards hash array
    http_get "$1" /checksum | sed 's/^[0-9]* //'
}

wait_converged() { # <name...>: poll until primary and both replicas hash equal
    for _ in $(seq 1 100); do
        local p r1 r2
        p=$(checksum "$P_HTTP"); r1=$(checksum "$R1_HTTP"); r2=$(checksum "$R2_HTTP")
        if [ -n "$p" ] && [ "$p" = "$r1" ] && [ "$p" = "$r2" ]; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: replicas never converged with the primary:" >&2
    echo "  primary: $(checksum "$P_HTTP")" >&2
    echo "  r1:      $(checksum "$R1_HTTP")" >&2
    echo "  r2:      $(checksum "$R2_HTTP")" >&2
    tail -n 20 "$DIR"/*.log >&2 || true
    return 1
}

start_primary() {
    "$DIR/rcnvm-serve" -tcp ":$P_TCP" -http ":$P_HTTP" -shards 2 -data-dir "$DATA" \
        >>"$DIR/primary.log" 2>&1 &
    P_PID=$!
    PIDS+=("$P_PID")
}

# start_replica <tcp> <http> <logname>: sets REPLICA_PID. Must run in the
# main shell (not $(...)) so cleanup sees the pid.
start_replica() {
    "$DIR/rcnvm-serve" -tcp ":$1" -http ":$2" -shards 2 -replica "127.0.0.1:$P_HTTP" \
        >>"$DIR/$3.log" 2>&1 &
    REPLICA_PID=$!
    PIDS+=("$REPLICA_PID")
}

echo "== building rcnvm-serve"
go build -o "$DIR/rcnvm-serve" ./cmd/rcnvm-serve

echo "== starting 1 primary + 2 replicas + router"
start_primary
start_replica "$R1_TCP" "$R1_HTTP" replica1; R1_PID=$REPLICA_PID
start_replica "$R2_TCP" "$R2_HTTP" replica2; R2_PID=$REPLICA_PID
"$DIR/rcnvm-serve" -route -tcp ":$RT_TCP" -http ":$RT_HTTP" \
    -primary "127.0.0.1:$P_TCP@127.0.0.1:$P_HTTP" \
    -replicas "127.0.0.1:$R1_TCP@127.0.0.1:$R1_HTTP,127.0.0.1:$R2_TCP@127.0.0.1:$R2_HTTP" \
    >"$DIR/router.log" 2>&1 &
RT_PID=$!
PIDS+=("$RT_PID")

wait_ready "$P_HTTP" primary
query "$RT_TCP" "CREATE TABLE smoke (k, grp, val) CAPACITY 4096" >/dev/null
for i in 0 1 2 3; do
    query "$RT_TCP" "INSERT INTO smoke VALUES ($((i*4)), $i, 1), ($((i*4+1)), $i, 2), ($((i*4+2)), $i, 3), ($((i*4+3)), $i, 4)" >/dev/null
done
wait_ready "$R1_HTTP" replica1
wait_ready "$R2_HTTP" replica2
wait_converged
echo "   seeded 16 rows; replicas converged"

echo "== killing replica1 under read load (zero client errors expected)"
LOAD_OUT="$DIR/load.out"
: >"$LOAD_OUT"
(
    for _ in $(seq 1 200); do
        query "$RT_TCP" "SELECT COUNT(*) FROM smoke" >>"$LOAD_OUT" || echo TRANSPORT_ERROR >>"$LOAD_OUT"
    done
) &
LOAD_PID=$!
sleep 0.3
kill -9 "$R1_PID"
wait "$R1_PID" 2>/dev/null || true
wait "$LOAD_PID"

BAD=$(grep -c -e '"error"' -e TRANSPORT_ERROR "$LOAD_OUT" || true)
TOTAL=$(wc -l <"$LOAD_OUT")
[ "$BAD" = 0 ] || { echo "FAIL: $BAD/$TOTAL reads failed during replica kill:" >&2; grep -m3 -e '"error"' -e TRANSPORT_ERROR "$LOAD_OUT" >&2; exit 1; }
WRONG=$(grep -vc '\[\[16\]\]' "$LOAD_OUT" || true)
[ "$WRONG" = 0 ] || { echo "FAIL: $WRONG/$TOTAL reads returned wrong data" >&2; exit 1; }
echo "   $TOTAL reads, 0 errors while replica1 died"

echo "== federated /cluster/metrics must report the dead replica mid-chaos"
NODE_UP_OK=0
for _ in $(seq 1 50); do
    FED=$(http_get "$RT_HTTP" /cluster/metrics)
    if printf '%s' "$FED" | grep -qF 'rcnvm_cluster_node_up{node="replica-0"} 0' &&
       printf '%s' "$FED" | grep -qF 'rcnvm_cluster_node_up{node="replica-1"} 1' &&
       printf '%s' "$FED" | grep -qF 'rcnvm_cluster_node_up{node="primary"} 1'; then
        NODE_UP_OK=1
        break
    fi
    sleep 0.2
done
[ "$NODE_UP_OK" = 1 ] || {
    echo "FAIL: /cluster/metrics never reflected the killed replica:" >&2
    printf '%s\n' "$FED" | grep -o 'rcnvm_cluster_node_up{[^}]*} .' >&2 || true
    exit 1
}
printf '%s' "$FED" | grep -qF 'rcnvm_cluster_replica_lag_records{node="replica-1"' || {
    echo "FAIL: federated exposition missing node-labeled lag series" >&2
    exit 1
}
echo "   cluster_node_up: replica-0 down, replica-1 + primary up; lag series federated"

echo "== restarting replica1: must catch up and byte-converge"
start_replica "$R1_TCP" "$R1_HTTP" replica1; R1_PID=$REPLICA_PID
wait_ready "$R1_HTTP" replica1-restarted
wait_converged
echo "   replica1 caught up; checksums equal"

echo "== killing the primary, recovering from its WAL"
query "$RT_TCP" "INSERT INTO smoke VALUES (100, 9, 90)" >/dev/null
kill -9 "$P_PID"
wait "$P_PID" 2>/dev/null || true
start_primary
wait_ready "$P_HTTP" primary-recovered
grep -q "records replayed" "$DIR/primary.log" || { echo "FAIL: no recovery banner" >&2; cat "$DIR/primary.log" >&2; exit 1; }
query "$RT_TCP" "INSERT INTO smoke VALUES (101, 9, 91)" >/dev/null
wait_converged
COUNT=$(query "$RT_TCP" "SELECT COUNT(*) FROM smoke")
echo "$COUNT" | grep -q '\[\[18\]\]' || { echo "FAIL: COUNT after primary recovery: $COUNT, want 18" >&2; exit 1; }
echo "   primary recovered; replica set converged on 18 rows"

echo "== SIGINT twice must force-quit non-zero"
SLOW_TCP=$((BASE + 8))
"$DIR/rcnvm-serve" -tcp ":$SLOW_TCP" -http "" -exec-delay 5s >"$DIR/slow.log" 2>&1 &
SLOW_PID=$!
PIDS+=("$SLOW_PID")
for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$SLOW_TCP") 2>/dev/null; then break; fi
    sleep 0.1
done
query "$SLOW_TCP" "SELECT COUNT(*) FROM load" >/dev/null &   # in-flight: drain would wait 5s
sleep 0.3
kill -INT "$SLOW_PID"
sleep 0.3
kill -INT "$SLOW_PID"
RC=0
wait "$SLOW_PID" || RC=$?
[ "$RC" -ne 0 ] || { echo "FAIL: second SIGINT exited 0 (drain was not aborted)" >&2; exit 1; }
grep -q "force quit" "$DIR/slow.log" || { echo "FAIL: no force-quit banner:" >&2; cat "$DIR/slow.log" >&2; exit 1; }
echo "   force quit with exit code $RC"

echo "PASS: replica kill masked, replica re-converged, primary recovered, force quit works"
