#!/usr/bin/env bash
# Crash-recovery smoke test: start rcnvm-serve with a data directory,
# insert rows, kill -9 the process, restart it on the same directory,
# and verify every acknowledged row survived. Exercises the real binary
# end to end (flags, recovery banner, TCP front end) where the Go tests
# exercise the packages.
set -euo pipefail

DIR=$(mktemp -d)
DATA="$DIR/data"
LOG="$DIR/serve.log"
TCP_PORT=${CRASH_SMOKE_TCP:-7171}
PID=""

cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

# query <sql> -> one NDJSON response line on stdout (bash /dev/tcp, so
# the script needs no netcat).
query() {
    exec 3<>"/dev/tcp/127.0.0.1/$TCP_PORT"
    printf '{"query":"%s"}\n' "$1" >&3
    IFS= read -r line <&3
    exec 3<&- 3>&-
    printf '%s\n' "$line"
}

wait_listening() {
    for _ in $(seq 1 50); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$TCP_PORT") 2>/dev/null; then return 0; fi
        sleep 0.1
    done
    echo "server never started listening; log:" >&2
    cat "$LOG" >&2
    return 1
}

echo "== building rcnvm-serve"
go build -o "$DIR/rcnvm-serve" ./cmd/rcnvm-serve

echo "== first run: create table, insert, kill -9"
"$DIR/rcnvm-serve" -tcp ":$TCP_PORT" -http "" -shards 2 -data-dir "$DATA" >"$LOG" 2>&1 &
PID=$!
wait_listening

query "CREATE TABLE smoke (k, val) CAPACITY 1024" >/dev/null
query "INSERT INTO smoke VALUES (1, 10), (2, 20), (3, 30)" >/dev/null
query "UPDATE smoke SET val = 99 WHERE k = 2" >/dev/null
BEFORE=$(query "SELECT SUM(val) FROM smoke")
echo "   pre-crash:  $BEFORE"

kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "== second run: recover from $DATA"
"$DIR/rcnvm-serve" -tcp ":$TCP_PORT" -http "" -shards 2 -data-dir "$DATA" >"$LOG" 2>&1 &
PID=$!
wait_listening
grep -q "records replayed" "$LOG" || { echo "no recovery banner in log:" >&2; cat "$LOG" >&2; exit 1; }

AFTER=$(query "SELECT SUM(val) FROM smoke")
echo "   post-crash: $AFTER"
COUNT=$(query "SELECT COUNT(*) FROM smoke")

[ "$BEFORE" = "$AFTER" ] || { echo "FAIL: SUM changed across crash: $BEFORE -> $AFTER" >&2; exit 1; }
echo "$COUNT" | grep -q '\[\[3\]\]' || { echo "FAIL: COUNT(*) = $COUNT, want 3 rows" >&2; exit 1; }

# Acknowledged writes must also survive a crash *after* more activity on
# the recovered process (the reopened WAL keeps appending).
query "INSERT INTO smoke VALUES (4, 40)" >/dev/null
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

"$DIR/rcnvm-serve" -tcp ":$TCP_PORT" -http "" -shards 2 -data-dir "$DATA" >"$LOG" 2>&1 &
PID=$!
wait_listening
COUNT=$(query "SELECT COUNT(*) FROM smoke")
echo "$COUNT" | grep -q '\[\[4\]\]' || { echo "FAIL: COUNT(*) = $COUNT after second crash, want 4 rows" >&2; exit 1; }

echo "PASS: all acknowledged writes survived two kill -9 restarts"
