#!/usr/bin/env bash
# metrics_lint.sh — documentation gate for exported metric series.
#
# Every exported counter/gauge name constant in internal/server and
# internal/cluster (the dotted stats.Set names like "server.queries" /
# "route.reads", plus full Prometheus series names like
# "rcnvm_cluster_node_up") must appear in DESIGN.md. A series that is not
# documented fails the build: dashboards and alerts get built against the
# doc, and an undocumented metric is one nobody can safely rely on or
# rename.
#
# Usage: scripts/metrics_lint.sh    (run from anywhere; CI runs it)
set -euo pipefail
cd "$(dirname "$0")/.."

# Exported constants assigned a string literal that looks like a metric
# series name: a dotted counter family ("server.queries") or a prefixed
# Prometheus name ("rcnvm_cluster_node_up"). Wire codes ("overloaded"),
# process names and other plain strings do not match.
names=$(grep -hoE '^[[:space:]]+[A-Z][A-Za-z0-9]*[[:space:]]*=[[:space:]]*"([a-z][a-z0-9_]*\.[a-z0-9_.]+|rcnvm_[a-z0-9_]+)"' \
    internal/server/*.go internal/cluster/*.go \
  | grep -oE '"[^"]+"' | tr -d '"' | sort -u)

if [ -z "$names" ]; then
  echo "metrics_lint: extracted no series names — the pattern rotted" >&2
  exit 1
fi

fail=0
count=0
for n in $names; do
  count=$((count + 1))
  if ! grep -qF "$n" DESIGN.md; then
    echo "metrics_lint: series \"$n\" is not documented in DESIGN.md" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "metrics_lint: FAILED — document the series above in DESIGN.md" >&2
  exit 1
fi
echo "metrics_lint: ok ($count series all documented in DESIGN.md)"
